"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.future_memory import (
    BatchEntry,
    future_memory_profile,
    memory_timeline,
    peak_future_memory,
    peak_future_memory_arrays,
)
from repro.core.history import OutputLengthHistory
from repro.core.predictor import build_predictor
from repro.memory.block_manager import BlockKVCachePool
from repro.memory.prefix_cache import PrefixCache
from repro.metrics.similarity import cosine_similarity, default_bin_edges, length_histogram
from repro.workloads.interactions import (
    Interaction,
    InteractionLoadGenerator,
    InteractionStage,
    generate_interactions,
)

entry_strategy = st.builds(
    BatchEntry,
    current_tokens=st.integers(min_value=0, max_value=500),
    remaining_tokens=st.integers(min_value=0, max_value=500),
)
entries_strategy = st.lists(entry_strategy, min_size=0, max_size=30)
lengths_strategy = st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=200)


class TestFutureMemoryProperties:
    @given(entries=entries_strategy)
    def test_peak_bounded_between_current_sum_and_final_sum(self, entries):
        peak = peak_future_memory(entries)
        current_sum = sum(e.current_tokens for e in entries)
        final_sum = sum(e.current_tokens + e.remaining_tokens for e in entries)
        assert current_sum <= peak <= final_sum or not entries

    @given(entries=entries_strategy)
    def test_peak_equals_timeline_maximum(self, entries):
        assert peak_future_memory(entries) == max(memory_timeline(entries))

    @given(entries=st.lists(entry_strategy, min_size=1, max_size=30))
    def test_profile_max_is_peak(self, entries):
        assert max(future_memory_profile(entries)) == peak_future_memory(entries)

    @given(entries=st.lists(entry_strategy, min_size=1, max_size=20), seed=st.integers(0, 100))
    def test_permutation_invariance(self, entries, seed):
        rng = np.random.default_rng(seed)
        shuffled = [entries[i] for i in rng.permutation(len(entries))]
        assert peak_future_memory(entries) == peak_future_memory(shuffled)

    @given(entries=entries_strategy, extra=entry_strategy)
    def test_adding_a_request_never_lowers_the_peak(self, entries, extra):
        assert peak_future_memory(entries + [extra]) >= peak_future_memory(entries)

    @given(
        current=st.lists(st.integers(0, 300), min_size=1, max_size=25),
        remaining=st.lists(st.integers(0, 300), min_size=1, max_size=25),
    )
    def test_array_and_dataclass_versions_agree(self, current, remaining):
        size = min(len(current), len(remaining))
        current, remaining = current[:size], remaining[:size]
        entries = [BatchEntry(c, r) for c, r in zip(current, remaining)]
        assert peak_future_memory_arrays(current, remaining) == peak_future_memory(entries)


class TestPredictorProperties:
    @given(lengths=lengths_strategy, seed=st.integers(0, 1000), count=st.integers(1, 50))
    @settings(max_examples=50)
    def test_new_samples_are_drawn_from_history(self, lengths, seed, count):
        predictor = build_predictor(np.array(lengths), seed=seed)
        samples = predictor.predict_new(count)
        assert set(samples.tolist()) <= set(lengths)

    @given(
        lengths=lengths_strategy,
        generated=st.lists(st.integers(0, 5000), min_size=1, max_size=30),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50)
    def test_running_predictions_strictly_exceed_generated(self, lengths, generated, seed):
        predictor = build_predictor(np.array(lengths), seed=seed)
        predictions = predictor.predict_running(generated)
        assert np.all(predictions > np.array(generated))

    @given(lengths=lengths_strategy)
    def test_probabilities_sum_to_one_over_support(self, lengths):
        predictor = build_predictor(np.array(lengths))
        total = sum(predictor.probability(int(v)) for v in predictor.support)
        assert abs(total - 1.0) < 1e-9


class TestHistoryProperties:
    @given(
        values=st.lists(st.integers(1, 10_000), min_size=1, max_size=300),
        window=st.integers(1, 50),
    )
    def test_window_keeps_most_recent_values(self, values, window):
        history = OutputLengthHistory(window_size=window)
        history.extend(values)
        expected = values[-window:]
        assert list(history.snapshot()) == expected
        assert len(history) == len(expected)


class TestBlockPoolProperties:
    @given(
        sizes=st.lists(st.integers(1, 64), min_size=1, max_size=20),
        block_size=st.sampled_from([1, 4, 16]),
    )
    @settings(max_examples=50)
    def test_allocate_free_round_trip_restores_pool(self, sizes, block_size):
        pool = BlockKVCachePool(4096, block_size=block_size)
        allocated = []
        for index, size in enumerate(sizes):
            if pool.can_allocate(size):
                pool.allocate(f"r{index}", size)
                allocated.append(f"r{index}")
        assert pool.used_tokens == sum(
            sizes[int(name[1:])] for name in allocated
        )
        for name in allocated:
            pool.free(name)
        assert pool.used_tokens == 0
        assert pool.free_blocks == pool.num_blocks

    @given(
        sizes=st.lists(st.integers(1, 64), min_size=1, max_size=20),
        appends=st.integers(0, 100),
    )
    @settings(max_examples=50)
    def test_used_tokens_never_exceed_capacity(self, sizes, appends):
        pool = BlockKVCachePool(512, block_size=1)
        for index, size in enumerate(sizes):
            if pool.can_allocate(size):
                pool.allocate(f"r{index}", size)
        owners = pool.owners()
        for index in range(appends):
            if not owners:
                break
            owner = owners[index % len(owners)]
            if pool.can_append_token(owner):
                pool.append_token(owner)
        assert pool.used_tokens <= pool.token_capacity


class TestSimilarityProperties:
    @given(
        lengths_a=st.lists(st.integers(1, 2048), min_size=5, max_size=200),
        lengths_b=st.lists(st.integers(1, 2048), min_size=5, max_size=200),
    )
    @settings(max_examples=50)
    def test_cosine_similarity_in_unit_interval_and_symmetric(self, lengths_a, lengths_b):
        edges = default_bin_edges(2048, 32)
        hist_a = length_histogram(lengths_a, edges)
        hist_b = length_histogram(lengths_b, edges)
        sim_ab = cosine_similarity(hist_a, hist_b)
        sim_ba = cosine_similarity(hist_b, hist_a)
        assert 0.0 <= sim_ab <= 1.0 + 1e-9
        assert sim_ab == sim_ba

    @given(lengths=st.lists(st.integers(1, 2048), min_size=5, max_size=200))
    def test_self_similarity_is_one(self, lengths):
        edges = default_bin_edges(2048, 32)
        hist = length_histogram(lengths, edges)
        assert hist.sum() == 0.0 or abs(cosine_similarity(hist, hist) - 1.0) < 1e-9


class TestPrefixCacheProperties:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 5), st.integers(1, 96)),
            min_size=1,
            max_size=40,
        ),
        capacity=st.integers(32, 256),
        pool_tokens=st.integers(128, 512),
    )
    @settings(max_examples=50)
    def test_residency_never_exceeds_budget_or_pool(self, ops, capacity, pool_tokens):
        """Under any retain/evict pressure the cache stays inside both budgets.

        Each op parks one finished turn's context (evicting cached prefixes
        first when the pool is too full to even allocate it, as the engine
        does for live traffic).  After every single operation: resident
        tokens respect the cache's own budget, match the sum over entries,
        equal the pool's pinned tokens, and the pool never overflows.
        """
        pool = BlockKVCachePool(pool_tokens, block_size=1)
        cache = PrefixCache(pool, capacity_tokens=capacity)
        stages: dict[str, int] = {}
        for index, (session, tokens) in enumerate(ops):
            sid = f"s{session}"
            rid = f"{sid}/t{stages.get(sid, 0)}-{index}"
            if not pool.can_allocate(tokens):
                cache.evict_for_allocation(tokens)
            if not pool.can_allocate(tokens):
                continue
            pool.allocate(rid, tokens)
            outcome = cache.retain(rid, sid, stages.get(sid, 0), tokens)
            stages[sid] = stages.get(sid, 0) + 1
            if not outcome.retained:
                pool.free(rid)
            assert cache.resident_tokens <= capacity
            assert cache.resident_tokens == sum(e.tokens for e in cache.entries())
            assert cache.resident_tokens == pool.pinned_tokens
            assert pool.used_tokens <= pool.token_capacity
        cache.clear()
        assert cache.resident_tokens == 0
        assert pool.pinned_tokens == 0

    @given(
        prompt=st.integers(1, 64),
        output=st.integers(1, 64),
        extra=st.integers(1, 32),
    )
    @settings(max_examples=50)
    def test_retained_prefix_is_claimable_by_exactly_the_next_stage(
        self, prompt, output, extra
    ):
        interaction = Interaction(
            session_id="s0",
            stages=(
                InteractionStage(prompt_tokens=prompt, output_tokens=output),
                InteractionStage(prompt_tokens=extra, output_tokens=1),
            ),
        )
        context = prompt + output
        pool = BlockKVCachePool(4 * (context + extra + 1), block_size=1)
        cache = PrefixCache(pool)
        pool.allocate("s0/t0", context)
        outcome = cache.retain("s0/t0", "s0", 0, context)
        assert outcome.retained and not outcome.evicted
        assert pool.pinned_tokens == context
        # Only the immediately following stage may claim the entry; a replay
        # of the retained stage itself finds nothing.
        assert cache.lookup(interaction.spec(0)) is None
        next_spec = interaction.spec(1)
        entry = cache.lookup(next_spec)
        assert entry is not None and entry.tokens == context
        cache.claim(entry, next_spec.request_id)
        assert len(cache) == 0 and cache.resident_tokens == 0
        assert pool.pinned_tokens == 0
        assert pool.tokens_of(next_spec.request_id) == context


class TestSessionStageProperties:
    @given(
        num_sessions=st.integers(1, 12),
        seed=st.integers(0, 1000),
        min_turns=st.integers(1, 3),
        extra_turns=st.integers(0, 6),
    )
    @settings(max_examples=50)
    def test_stage_ordering_is_total_per_session(
        self, num_sessions, seed, min_turns, extra_turns
    ):
        """Stage order is total per session id, recoverable from any shuffle.

        Request ids are ``{session_id}/t{stage}``, stages run 0..n-1 with no
        gaps, and prefix accumulation makes input lengths strictly increasing
        across a session's turns — so sorting a session's specs by any of id,
        stage, or input length yields the same (unique) order.
        """
        sessions = generate_interactions(
            num_sessions,
            seed=seed,
            min_turns=min_turns,
            max_turns=min_turns + extra_turns,
        )
        assert len({s.session_id for s in sessions}) == len(sessions)
        for interaction in sessions:
            specs = [interaction.spec(stage) for stage in range(interaction.num_stages)]
            assert [s.request_id for s in specs] == [
                f"{interaction.session_id}/t{stage}" for stage in range(len(specs))
            ]
            assert [s.session_stage for s in specs] == list(range(len(specs)))
            lengths = [s.input_length for s in specs]
            assert lengths == sorted(lengths)
            assert len(set(lengths)) == len(lengths)
            assert specs[-1].is_final_stage
            assert not any(s.is_final_stage for s in specs[:-1])

    @given(num_sessions=st.integers(1, 10), seed=st.integers(0, 1000))
    @settings(max_examples=50)
    def test_generation_is_deterministic_in_the_seed(self, num_sessions, seed):
        assert generate_interactions(num_sessions, seed=seed) == generate_interactions(
            num_sessions, seed=seed
        )


class _FinishedTurn:
    """Minimal stand-in for a finished engine request (spec + is_finished)."""

    def __init__(self, spec):
        self.spec = spec
        self.is_finished = True


class TestSpawnedArrivalProperties:
    @given(
        seed=st.integers(0, 500),
        num_sessions=st.integers(1, 8),
        think_time=st.floats(0.0, 5.0),
        start_spacing=st.floats(0.0, 3.0),
        service_time=st.floats(0.001, 2.0),
    )
    @settings(max_examples=50)
    def test_spawned_arrivals_are_monotone_per_session(
        self, seed, num_sessions, think_time, start_spacing, service_time
    ):
        """Turn *n + 1* never arrives before turn *n* completes, any seed.

        Drives the closed-loop generator to drain with a fixed per-turn
        service time: every session's arrivals come out in stage order, each
        at least one service (plus think) time after its predecessor, and
        the global pop clock never runs backwards.
        """
        sessions = generate_interactions(
            num_sessions,
            seed=seed,
            min_turns=1,
            max_turns=6,
            think_time=think_time,
            start_spacing=start_spacing,
        )
        generator = InteractionLoadGenerator(sessions)
        generator.start(0.0)
        arrivals: dict[str, list[tuple[int, float]]] = {}
        last_pop = -1.0
        while not generator.drained:
            now = generator.next_arrival_time()
            assert now is not None
            assert now >= last_pop
            last_pop = now
            ready = generator.pop_arrivals(now)
            assert ready
            for spec in ready:
                arrivals.setdefault(spec.session_id, []).append(
                    (spec.session_stage, spec.arrival_time)
                )
                finish = now + service_time
                generator.on_request_completed(_FinishedTurn(spec), finish)
                generator.on_request_finished(finish)
        assert generator.in_flight == 0
        assert set(arrivals) == {s.session_id for s in sessions}
        for interaction in sessions:
            turns = arrivals[interaction.session_id]
            assert [stage for stage, _ in turns] == list(range(interaction.num_stages))
            assert generator.turns_completed[interaction.session_id] == interaction.num_stages
            times = [time for _, time in turns]
            for earlier, later in zip(times, times[1:]):
                assert later >= earlier + service_time + think_time - 1e-9

"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.future_memory import (
    BatchEntry,
    future_memory_profile,
    memory_timeline,
    peak_future_memory,
    peak_future_memory_arrays,
)
from repro.core.history import OutputLengthHistory
from repro.core.predictor import build_predictor
from repro.memory.block_manager import BlockKVCachePool
from repro.metrics.similarity import cosine_similarity, default_bin_edges, length_histogram

entry_strategy = st.builds(
    BatchEntry,
    current_tokens=st.integers(min_value=0, max_value=500),
    remaining_tokens=st.integers(min_value=0, max_value=500),
)
entries_strategy = st.lists(entry_strategy, min_size=0, max_size=30)
lengths_strategy = st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=200)


class TestFutureMemoryProperties:
    @given(entries=entries_strategy)
    def test_peak_bounded_between_current_sum_and_final_sum(self, entries):
        peak = peak_future_memory(entries)
        current_sum = sum(e.current_tokens for e in entries)
        final_sum = sum(e.current_tokens + e.remaining_tokens for e in entries)
        assert current_sum <= peak <= final_sum or not entries

    @given(entries=entries_strategy)
    def test_peak_equals_timeline_maximum(self, entries):
        assert peak_future_memory(entries) == max(memory_timeline(entries))

    @given(entries=st.lists(entry_strategy, min_size=1, max_size=30))
    def test_profile_max_is_peak(self, entries):
        assert max(future_memory_profile(entries)) == peak_future_memory(entries)

    @given(entries=st.lists(entry_strategy, min_size=1, max_size=20), seed=st.integers(0, 100))
    def test_permutation_invariance(self, entries, seed):
        rng = np.random.default_rng(seed)
        shuffled = [entries[i] for i in rng.permutation(len(entries))]
        assert peak_future_memory(entries) == peak_future_memory(shuffled)

    @given(entries=entries_strategy, extra=entry_strategy)
    def test_adding_a_request_never_lowers_the_peak(self, entries, extra):
        assert peak_future_memory(entries + [extra]) >= peak_future_memory(entries)

    @given(
        current=st.lists(st.integers(0, 300), min_size=1, max_size=25),
        remaining=st.lists(st.integers(0, 300), min_size=1, max_size=25),
    )
    def test_array_and_dataclass_versions_agree(self, current, remaining):
        size = min(len(current), len(remaining))
        current, remaining = current[:size], remaining[:size]
        entries = [BatchEntry(c, r) for c, r in zip(current, remaining)]
        assert peak_future_memory_arrays(current, remaining) == peak_future_memory(entries)


class TestPredictorProperties:
    @given(lengths=lengths_strategy, seed=st.integers(0, 1000), count=st.integers(1, 50))
    @settings(max_examples=50)
    def test_new_samples_are_drawn_from_history(self, lengths, seed, count):
        predictor = build_predictor(np.array(lengths), seed=seed)
        samples = predictor.predict_new(count)
        assert set(samples.tolist()) <= set(lengths)

    @given(
        lengths=lengths_strategy,
        generated=st.lists(st.integers(0, 5000), min_size=1, max_size=30),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50)
    def test_running_predictions_strictly_exceed_generated(self, lengths, generated, seed):
        predictor = build_predictor(np.array(lengths), seed=seed)
        predictions = predictor.predict_running(generated)
        assert np.all(predictions > np.array(generated))

    @given(lengths=lengths_strategy)
    def test_probabilities_sum_to_one_over_support(self, lengths):
        predictor = build_predictor(np.array(lengths))
        total = sum(predictor.probability(int(v)) for v in predictor.support)
        assert abs(total - 1.0) < 1e-9


class TestHistoryProperties:
    @given(
        values=st.lists(st.integers(1, 10_000), min_size=1, max_size=300),
        window=st.integers(1, 50),
    )
    def test_window_keeps_most_recent_values(self, values, window):
        history = OutputLengthHistory(window_size=window)
        history.extend(values)
        expected = values[-window:]
        assert list(history.snapshot()) == expected
        assert len(history) == len(expected)


class TestBlockPoolProperties:
    @given(
        sizes=st.lists(st.integers(1, 64), min_size=1, max_size=20),
        block_size=st.sampled_from([1, 4, 16]),
    )
    @settings(max_examples=50)
    def test_allocate_free_round_trip_restores_pool(self, sizes, block_size):
        pool = BlockKVCachePool(4096, block_size=block_size)
        allocated = []
        for index, size in enumerate(sizes):
            if pool.can_allocate(size):
                pool.allocate(f"r{index}", size)
                allocated.append(f"r{index}")
        assert pool.used_tokens == sum(
            sizes[int(name[1:])] for name in allocated
        )
        for name in allocated:
            pool.free(name)
        assert pool.used_tokens == 0
        assert pool.free_blocks == pool.num_blocks

    @given(
        sizes=st.lists(st.integers(1, 64), min_size=1, max_size=20),
        appends=st.integers(0, 100),
    )
    @settings(max_examples=50)
    def test_used_tokens_never_exceed_capacity(self, sizes, appends):
        pool = BlockKVCachePool(512, block_size=1)
        for index, size in enumerate(sizes):
            if pool.can_allocate(size):
                pool.allocate(f"r{index}", size)
        owners = pool.owners()
        for index in range(appends):
            if not owners:
                break
            owner = owners[index % len(owners)]
            if pool.can_append_token(owner):
                pool.append_token(owner)
        assert pool.used_tokens <= pool.token_capacity


class TestSimilarityProperties:
    @given(
        lengths_a=st.lists(st.integers(1, 2048), min_size=5, max_size=200),
        lengths_b=st.lists(st.integers(1, 2048), min_size=5, max_size=200),
    )
    @settings(max_examples=50)
    def test_cosine_similarity_in_unit_interval_and_symmetric(self, lengths_a, lengths_b):
        edges = default_bin_edges(2048, 32)
        hist_a = length_histogram(lengths_a, edges)
        hist_b = length_histogram(lengths_b, edges)
        sim_ab = cosine_similarity(hist_a, hist_b)
        sim_ba = cosine_similarity(hist_b, hist_a)
        assert 0.0 <= sim_ab <= 1.0 + 1e-9
        assert sim_ab == sim_ba

    @given(lengths=st.lists(st.integers(1, 2048), min_size=5, max_size=200))
    def test_self_similarity_is_one(self, lengths):
        edges = default_bin_edges(2048, 32)
        hist = length_histogram(lengths, edges)
        assert hist.sum() == 0.0 or abs(cosine_similarity(hist, hist) - 1.0) < 1e-9

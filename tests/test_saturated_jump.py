"""Saturated-phase event jumps: RNG-stream identity and bit-identical results.

The saturated-phase fast path
(:meth:`repro.engine.engine.InferenceEngine.try_jump_saturated`) fuses
iterations whose admission decisions provably admit nothing.  Its correctness
rests on three independently testable claims, covered here in order:

1. **Predictor stream identity** — a single
   :meth:`~repro.core.predictor.OutputLengthPredictor.predict_running_batch`
   draw returns the same predictions *and* leaves the generator in the same
   state as the sequential per-iteration calls it replaces (compared via
   ``bit_generator.state``, not just values).
2. **Scheduler decision equality** — the batched
   :meth:`~repro.core.past_future.PastFutureScheduler.saturated_no_admit_horizon`
   replays exactly the decisions (and the RNG bookkeeping) that sequential
   :meth:`schedule` calls would have produced across a uniform decode window.
3. **End-to-end bit-identity** — whole simulations with the saturated jump
   enabled produce byte-identical metrics to the reference loop
   (``fast_path=False``), across workload families, chunked prefill on/off,
   and schedulers, while the jump demonstrably fires.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.perf import cluster_snapshot, run_snapshot
from repro.core.history import OutputLengthHistory
from repro.core.past_future import PastFutureScheduler
from repro.core.predictor import OutputLengthPredictor
from repro.engine.request import Request, RequestState
from repro.hardware.platform import paper_platform
from repro.schedulers.base import SchedulingContext
from repro.schedulers.conservative import ConservativeScheduler
from repro.schedulers.oracle import OracleScheduler
from repro.schedulers.registry import create_scheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.server import ServingSimulator
from repro.workloads.burstgpt import generate_conversation_trace
from repro.workloads.sharegpt import generate_sharegpt_o1_workload, generate_sharegpt_workload
from repro.workloads.spec import RequestSpec, scale_workload

PLATFORM = paper_platform("7b-a100")


# ----------------------------------------------------- predictor stream identity
@pytest.mark.parametrize("aggregation", ["max", "mean", "median"])
@pytest.mark.parametrize("num_samples", [1, 4])
def test_predict_running_batch_matches_sequential_calls(aggregation, num_samples):
    """One (steps, S, n) draw == `steps` sequential draws: values and state."""
    lengths = np.array([5, 9, 9, 14, 30, 120, 450], dtype=np.int64)
    generated = np.array([0, 3, 9, 29, 500], dtype=np.int64)
    batched = OutputLengthPredictor(
        lengths, seed=42, num_samples=num_samples, aggregation=aggregation
    )
    sequential = OutputLengthPredictor(
        lengths, seed=42, num_samples=num_samples, aggregation=aggregation
    )
    steps = 17
    rows = batched.predict_running_batch(generated, steps)
    assert rows.shape == (steps, generated.size)
    for k in range(steps):
        np.testing.assert_array_equal(rows[k], sequential.predict_running(generated + k))
    # The decisive check: the two generators consumed identical streams, so
    # any *future* draw also agrees.
    assert (
        batched._rng.bit_generator.state == sequential._rng.bit_generator.state
    )
    np.testing.assert_array_equal(batched.predict_new(3), sequential.predict_new(3))


def test_predict_running_batch_zero_steps_consumes_nothing():
    predictor = OutputLengthPredictor(np.array([4, 8, 15]), seed=1)
    untouched = OutputLengthPredictor(np.array([4, 8, 15]), seed=1)
    rows = predictor.predict_running_batch([1, 2], 0)
    assert rows.shape == (0, 2)
    assert predictor._rng.bit_generator.state == untouched._rng.bit_generator.state


def test_history_sorted_snapshot_is_cached_until_mutation():
    history = OutputLengthHistory(window_size=8, default_length=64)
    seeded = history.sorted_snapshot()
    np.testing.assert_array_equal(seeded, [64])
    assert history.sorted_snapshot() is seeded  # cached object, no re-sort
    history.record(9)
    history.record(3)
    resorted = history.sorted_snapshot()
    np.testing.assert_array_equal(resorted, [3, 9])
    assert history.sorted_snapshot() is resorted
    history.clear()
    np.testing.assert_array_equal(history.sorted_snapshot(), [64])


# ------------------------------------------------- scheduler decision equality
def _decoding_request(
    request_id: str, prompt: int, generated: int, cap: int = 4096, true_length: int | None = None
) -> Request:
    request = Request(
        spec=RequestSpec(
            request_id=request_id,
            input_length=prompt,
            output_length=true_length if true_length is not None else cap,
            max_new_tokens=cap,
        ),
        arrival_time=0.0,
    )
    request.state = RequestState.DECODING
    request.generated_tokens = generated
    return request


def _queued_request(
    request_id: str, prompt: int, cap: int = 4096, generated: int = 0, true_length: int | None = None
) -> Request:
    request = Request(
        spec=RequestSpec(
            request_id=request_id,
            input_length=prompt,
            output_length=true_length if true_length is not None else cap,
            max_new_tokens=cap,
        ),
        arrival_time=0.0,
    )
    request.generated_tokens = generated
    return request


def _context(running, waiting, capacity, step=1):
    return SchedulingContext(
        time=0.0,
        step=step,
        running=list(running),
        waiting=list(waiting),
        token_capacity=capacity,
        used_tokens=sum(r.current_context_tokens for r in running),
    )


def _grow_uniformly(requests, steps=1):
    for request in requests:
        request.generated_tokens += steps


@pytest.mark.parametrize("head_generated", [0, 7])
@pytest.mark.parametrize("num_samples", [1, 3])
def test_saturated_horizon_replays_sequential_decisions(head_generated, num_samples):
    """Horizon == index of the first admitting iteration, with identical RNG use.

    The batched scheduler proves a horizon once; the sequential scheduler
    replays the same uniform decode window one schedule() call at a time.
    They must agree on every decision *and* end with the same sample counter,
    so the first post-window consultation draws from the same generator seed.
    (At this capacity the parametrizations cover horizon 0 — the head admits
    immediately — as well as small positive horizons where sampling noise
    lets the head in mid-window.)
    """
    capacity = 4800

    def build():
        scheduler = PastFutureScheduler(
            reserved_fraction=0.05, seed=13, num_samples=num_samples
        )
        scheduler.on_run_start()
        # A shortish history makes sampled predictions small enough that the
        # head eventually fits as residents' conditional tails shrink.
        for length in (40, 60, 90, 120, 200, 320, 500, 800):
            scheduler.history.record(length)
        running = [
            _decoding_request("r0", prompt=900, generated=10),
            _decoding_request("r1", prompt=700, generated=45),
            _decoding_request("r2", prompt=1100, generated=80),
            _decoding_request("r3", prompt=400, generated=5),
        ]
        waiting = [
            _queued_request("q0", prompt=600, generated=head_generated),
            _queued_request("q1", prompt=50),
        ]
        return scheduler, running, waiting

    max_steps = 200
    batched, running, waiting = build()
    horizon = batched.saturated_no_admit_horizon(
        _context(running, waiting, capacity), max_steps
    )
    # The proof must not touch persistent state until steps are committed.
    assert batched._sample_counter == 0

    sequential, running, waiting = build()
    replayed = 0
    while replayed < max_steps:
        admitted = sequential.schedule(_context(running, waiting, capacity, step=replayed + 1))
        if admitted:
            break
        replayed += 1
        _grow_uniformly(running)
    assert horizon == replayed

    # Committing the fused steps leaves the batched scheduler's RNG
    # bookkeeping exactly where the sequential replay ended up (minus the
    # admitting consultation itself, which the engine re-runs for real).
    batched.on_saturated_steps_fused(horizon)
    assert batched._sample_counter == horizon
    assert sequential._sample_counter == replayed + (1 if replayed < max_steps else 0)
    if horizon < max_steps:
        # Consulting the batched scheduler for real at the post-window state
        # re-draws the admitting iteration's exact samples and admits.
        admitted = batched.schedule(
            _context(running, waiting, capacity, step=horizon + 1)
        )
        assert admitted, "horizon ended on an iteration that does not admit"


def test_saturated_horizon_spans_full_window_when_head_cannot_fit():
    """A head larger than the leftover budget blocks across every chunk."""
    scheduler = PastFutureScheduler(reserved_fraction=0.05, seed=13, num_samples=2)
    scheduler.on_run_start()
    for length in (40, 60, 90, 120, 200, 320, 500, 800):
        scheduler.history.record(length)
    running = [
        _decoding_request("r0", prompt=900, generated=10),
        _decoding_request("r1", prompt=700, generated=45),
    ]
    # 3200 prompt tokens + the 1655-token batch exceed the 4560 budget on
    # current tokens alone, so no sampled remaining can let the head in.
    waiting = [_queued_request("q0", prompt=3200)]
    capacity = 4800
    max_steps = 150  # crosses several geometric chunks (2+4+8+...)
    horizon = scheduler.saturated_no_admit_horizon(
        _context(running, waiting, capacity), max_steps
    )
    assert horizon == max_steps
    replayed = 0
    while replayed < max_steps:
        assert not scheduler.schedule(
            _context(running, waiting, capacity, step=replayed + 1)
        )
        replayed += 1
        _grow_uniformly(running)


def test_saturated_horizon_zero_when_empty_batch_or_queue():
    scheduler = PastFutureScheduler(seed=3)
    scheduler.on_run_start()
    running = [_decoding_request("r0", prompt=100, generated=4)]
    waiting = [_queued_request("q0", prompt=100)]
    assert scheduler.saturated_no_admit_horizon(_context(running, [], 4096), 50) == 0
    assert scheduler.saturated_no_admit_horizon(_context([], waiting, 4096), 50) == 0
    assert scheduler.saturated_no_admit_horizon(_context(running, waiting, 4096), 0) == 0


def test_conservative_horizon_is_all_or_nothing():
    scheduler = ConservativeScheduler()
    running = [_decoding_request("r0", prompt=1000, generated=10, cap=2000)]
    blocked = [_queued_request("q0", prompt=1500, cap=2000)]
    tiny = [_queued_request("q1", prompt=10, cap=100)]
    # Worst-case footprints are constant: 3000 committed + 3500 > 4096 forever.
    assert scheduler.saturated_no_admit_horizon(_context(running, blocked, 4096), 75) == 75
    # 3000 + 110 fits, so the very next iteration admits: no proof possible.
    assert scheduler.saturated_no_admit_horizon(_context(running, tiny, 4096), 75) == 0


def test_oracle_horizon_matches_sequential_schedule():
    scheduler = OracleScheduler()
    running = [
        _decoding_request("r0", prompt=500, generated=100, cap=700, true_length=650),
        _decoding_request("r1", prompt=800, generated=20, cap=700, true_length=580),
    ]
    waiting = [_queued_request("q0", prompt=400, cap=500, true_length=450)]
    capacity = 3000
    max_steps = 120
    horizon = scheduler.saturated_no_admit_horizon(
        _context(running, waiting, capacity), max_steps
    )
    replayed = 0
    while replayed < max_steps:
        if scheduler.schedule(_context(running, waiting, capacity)):
            break
        replayed += 1
        _grow_uniformly(running)
    assert horizon == replayed


# ------------------------------------------------------- end-to-end identity
CAPACITY = 2048

SATURATED_WORKLOADS = {
    "sharegpt": lambda: scale_workload(generate_sharegpt_workload(80, seed=3), 0.25),
    "sharegpt-o1": lambda: scale_workload(generate_sharegpt_o1_workload(50, seed=5), 0.125),
    "burstgpt-conversation": lambda: scale_workload(
        generate_conversation_trace(80, seed=7), 0.25
    ),
}


def _run_single(scheduler_name, scheduler_kwargs, workload, *, chunked, fast_path, clients):
    simulator = ServingSimulator(
        PLATFORM,
        create_scheduler(scheduler_name, **scheduler_kwargs),
        token_capacity_override=CAPACITY,
        chunked_prefill_tokens=chunked,
        fast_path=fast_path,
    )
    result = simulator.run_closed_loop(workload, num_clients=clients)
    return simulator, result


@pytest.mark.parametrize("workload_name", list(SATURATED_WORKLOADS))
@pytest.mark.parametrize("chunked", [None, 256])
def test_saturated_past_future_bit_identical(workload_name, chunked):
    """Deep saturation (clients >> capacity): fast == reference, bit for bit."""
    build = SATURATED_WORKLOADS[workload_name]
    fast_sim, fast = _run_single(
        "past-future",
        {"reserved_fraction": 0.05, "seed": 11, "num_samples": 2},
        build(),
        chunked=chunked,
        fast_path=True,
        clients=48,
    )
    ref_sim, reference = _run_single(
        "past-future",
        {"reserved_fraction": 0.05, "seed": 11, "num_samples": 2},
        build(),
        chunked=chunked,
        fast_path=False,
        clients=48,
    )
    assert run_snapshot(fast) == run_snapshot(reference)
    # The RNG bookkeeping ends at the same position even though the fast run
    # consulted the scheduler far fewer times.
    assert fast_sim.engine.scheduler._sample_counter == ref_sim.engine.scheduler._sample_counter


def test_saturated_jump_actually_fires_and_respects_bisect_flag():
    """The macro-step fires under saturation, and fast_path=False disables it."""
    workload = SATURATED_WORKLOADS["sharegpt"]()
    simulator = ServingSimulator(
        PLATFORM,
        create_scheduler("past-future", seed=1, num_samples=2),
        token_capacity_override=CAPACITY,
        fast_path=True,
    )
    fused = []
    original = simulator.engine.try_jump_saturated

    def spy(*args, **kwargs):
        result = original(*args, **kwargs)
        if result is not None:
            fused.append(result.steps)
        return result

    simulator.engine.try_jump_saturated = spy
    simulator.run_closed_loop(workload, num_clients=48)
    assert fused, "no saturated macro-step was taken under deep saturation"
    assert max(fused) >= 2

    bisect = ServingSimulator(
        PLATFORM,
        create_scheduler("past-future", seed=1, num_samples=2),
        token_capacity_override=CAPACITY,
        fast_path=False,
    )
    bisect.engine.submit(_queued_request("q0", prompt=32))
    assert bisect.engine.try_jump_saturated(0.0) is None


@pytest.mark.parametrize("scheduler_name,kwargs", [
    ("aggressive", {"watermark": 0.95}),
    ("conservative", {}),
    ("oracle", {}),
])
def test_saturated_baseline_schedulers_bit_identical(scheduler_name, kwargs):
    workload = SATURATED_WORKLOADS["sharegpt"]()
    _, fast = _run_single(
        scheduler_name, kwargs, workload, chunked=None, fast_path=True, clients=48
    )
    _, reference = _run_single(
        scheduler_name, kwargs, workload, chunked=None, fast_path=False, clients=48
    )
    assert run_snapshot(fast) == run_snapshot(reference)


def test_saturated_cluster_bit_identical():
    """Fleet saturation: per-replica saturated jumps stay fleet-bit-identical."""
    workload = scale_workload(generate_sharegpt_workload(90, seed=13), 0.25)

    def build(fast_path):
        return ClusterSimulator(
            platform=PLATFORM,
            num_replicas=2,
            router="memory-aware",
            scheduler_name="past-future",
            scheduler_kwargs={"reserved_fraction": 0.05, "seed": 11, "num_samples": 2},
            token_capacity_override=CAPACITY,
            fast_path=fast_path,
        )

    fast = build(True).run_closed_loop(workload, num_clients=24)
    reference = build(False).run_closed_loop(workload, num_clients=24)
    assert cluster_snapshot(fast) == cluster_snapshot(reference)

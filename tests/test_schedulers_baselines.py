"""Tests for the conservative, aggressive, and oracle baseline schedulers."""

from __future__ import annotations

import pytest

from repro.engine.request import Request
from repro.schedulers.aggressive import AggressiveScheduler
from repro.schedulers.base import SchedulingContext
from repro.schedulers.conservative import ConservativeScheduler
from repro.schedulers.oracle import OracleScheduler
from tests.conftest import make_spec


def make_request(request_id: str, input_length: int, output_length: int,
                 max_new_tokens: int = 256) -> Request:
    return Request(
        spec=make_spec(
            request_id=request_id,
            input_length=input_length,
            output_length=output_length,
            max_new_tokens=max_new_tokens,
        ),
        arrival_time=0.0,
    )


def make_context(running, waiting, capacity) -> SchedulingContext:
    return SchedulingContext(
        time=0.0,
        step=0,
        running=list(running),
        waiting=list(waiting),
        token_capacity=capacity,
        used_tokens=sum(r.current_context_tokens for r in running),
    )


class TestConservativeScheduler:
    def test_rejects_non_positive_overcommit(self):
        with pytest.raises(ValueError):
            ConservativeScheduler(overcommit=0.0)

    def test_admits_only_worst_case_fitting_requests(self):
        scheduler = ConservativeScheduler()
        # Each request's worst case is 10 + 100 = 110 tokens.
        waiting = [make_request(f"w{i}", 10, 5, max_new_tokens=100) for i in range(5)]
        context = make_context([], waiting, capacity=350)
        admitted = scheduler.schedule(context)
        assert len(admitted) == 3

    def test_overcommit_admits_more(self):
        waiting = [make_request(f"w{i}", 10, 5, max_new_tokens=100) for i in range(5)]
        strict = ConservativeScheduler(overcommit=1.0)
        relaxed = ConservativeScheduler(overcommit=1.5)
        strict_count = len(strict.schedule(make_context([], waiting, capacity=350)))
        relaxed_count = len(relaxed.schedule(make_context([], waiting, capacity=350)))
        assert relaxed_count > strict_count

    def test_accounts_for_running_worst_case(self):
        scheduler = ConservativeScheduler()
        running = [make_request("r0", 10, 5, max_new_tokens=100)]
        running[0].admit(0.0)
        waiting = [make_request("w0", 10, 5, max_new_tokens=100)]
        # Capacity fits one worst case but not two.
        context = make_context(running, waiting, capacity=150)
        assert scheduler.schedule(context) == []

    def test_empty_queue(self):
        scheduler = ConservativeScheduler()
        assert scheduler.schedule(make_context([], [], capacity=100)) == []

    def test_progress_guarantee(self):
        scheduler = ConservativeScheduler()
        # Worst case (10 + 200) exceeds capacity, but the prompt itself fits:
        # an empty system still admits the head request.
        waiting = [make_request("w0", 10, 5, max_new_tokens=200)]
        context = make_context([], waiting, capacity=150)
        assert scheduler.schedule(context) == waiting

    def test_describe_mentions_overcommit(self):
        assert "150%" in ConservativeScheduler(overcommit=1.5).describe()
        assert "no overcommit" in ConservativeScheduler().describe()


class TestAggressiveScheduler:
    def test_rejects_invalid_watermark(self):
        with pytest.raises(ValueError):
            AggressiveScheduler(watermark=0.0)
        with pytest.raises(ValueError):
            AggressiveScheduler(watermark=1.5)

    def test_admits_on_prompt_fit_ignoring_outputs(self):
        scheduler = AggressiveScheduler(watermark=1.0)
        # Prompts are 10 tokens; outputs would eventually need 100 more each,
        # but the aggressive scheduler ignores that and admits all of them.
        waiting = [make_request(f"w{i}", 10, 100, max_new_tokens=100) for i in range(5)]
        context = make_context([], waiting, capacity=60)
        assert len(scheduler.schedule(context)) == 5

    def test_watermark_limits_admission(self):
        waiting = [make_request(f"w{i}", 10, 20) for i in range(10)]
        high = AggressiveScheduler(watermark=1.0)
        low = AggressiveScheduler(watermark=0.5)
        high_count = len(high.schedule(make_context([], waiting, capacity=100)))
        low_count = len(low.schedule(make_context([], waiting, capacity=100)))
        assert high_count == 10
        assert low_count == 5

    def test_counts_running_context(self):
        scheduler = AggressiveScheduler(watermark=1.0)
        running = [make_request("r0", 50, 20)]
        running[0].admit(0.0)
        waiting = [make_request("w0", 60, 20)]
        context = make_context(running, waiting, capacity=100)
        assert scheduler.schedule(context) == []

    def test_admits_more_than_conservative(self):
        waiting = [make_request(f"w{i}", 10, 5, max_new_tokens=500) for i in range(8)]
        aggressive = AggressiveScheduler()
        conservative = ConservativeScheduler()
        capacity = 1000
        aggressive_count = len(aggressive.schedule(make_context([], list(waiting), capacity)))
        conservative_count = len(conservative.schedule(make_context([], list(waiting), capacity)))
        assert aggressive_count > conservative_count

    def test_describe_mentions_watermark(self):
        assert "95%" in AggressiveScheduler(watermark=0.95).describe()


class TestOracleScheduler:
    def test_uses_true_lengths_not_caps(self):
        scheduler = OracleScheduler()
        # True outputs are tiny although the cap is huge; the oracle knows and
        # admits everything a conservative scheduler would refuse.
        waiting = [make_request(f"w{i}", 10, 2, max_new_tokens=1000) for i in range(5)]
        context = make_context([], waiting, capacity=100)
        assert len(scheduler.schedule(context)) == 5

    def test_refuses_when_true_peak_exceeds_capacity(self):
        scheduler = OracleScheduler()
        running = [make_request("r0", 10, 80)]
        running[0].admit(0.0)
        waiting = [make_request("w0", 10, 80)]
        context = make_context(running, waiting, capacity=120)
        assert scheduler.schedule(context) == []

    def test_admission_is_prefix(self):
        scheduler = OracleScheduler()
        waiting = [make_request(f"w{i}", 10, 30) for i in range(10)]
        context = make_context([], waiting, capacity=200)
        admitted = scheduler.schedule(context)
        assert admitted == waiting[: len(admitted)]

    def test_describe(self):
        assert "oracle" in OracleScheduler().describe()

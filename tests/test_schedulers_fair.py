"""Tests for the Virtual Token Counter fair schedulers."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.engine.request import Request
from repro.schedulers import (
    ANONYMOUS_TENANT,
    VirtualTokenCounterScheduler,
    WeightedServiceCounterScheduler,
    available_schedulers,
    create_scheduler,
)
from repro.schedulers.base import SchedulingContext
from repro.serving.server import ServingSimulator
from repro.workloads.tenants import assign_tenants, generate_tenant_population
from tests.conftest import TINY_CAPACITY, make_spec, make_workload


def tenant_request(
    request_id: str,
    user_id: str | None,
    input_length: int = 32,
    arrival_time: float = 0.0,
) -> Request:
    spec = replace(
        make_spec(request_id=request_id, input_length=input_length), user_id=user_id
    )
    return Request(spec=spec, arrival_time=arrival_time)


def make_context(
    waiting: list[Request],
    running: list[Request] | None = None,
    token_capacity: int = 1000,
) -> SchedulingContext:
    running = running or []
    used = sum(r.current_context_tokens for r in running)
    return SchedulingContext(
        time=0.0,
        step=0,
        running=running,
        waiting=waiting,
        token_capacity=token_capacity,
        used_tokens=used,
    )


def finish(scheduler, request: Request, generated: int = 0) -> None:
    """Deliver ``generated`` tokens and fire the completion callback."""
    request.admit(0.0)
    request.note_prefill(request.recompute_tokens)
    for step in range(generated):
        request.deliver_token(0.1 * (step + 1))
    request.finish(0.1 * max(generated, 1))
    scheduler.on_request_finished(request, request.finish_time)


class TestCounterAccounting:
    def test_completion_charges_prefill_plus_decode(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        request = tenant_request("r0", "alice", input_length=32)
        scheduler.on_request_submitted(request)
        finish(scheduler, request, generated=16)
        assert scheduler.counter("alice") == pytest.approx(32 + 16)

    def test_service_weights_scale_the_charge(self):
        scheduler = VirtualTokenCounterScheduler(prefill_weight=0.5, decode_weight=2.0)
        scheduler.on_run_start()
        request = tenant_request("r0", "alice", input_length=32)
        scheduler.on_request_submitted(request)
        finish(scheduler, request, generated=16)
        assert scheduler.counter("alice") == pytest.approx(0.5 * 32 + 2.0 * 16)

    def test_weighted_tenant_charged_slower(self):
        scheduler = WeightedServiceCounterScheduler(weights={"paid": 2.0})
        scheduler.on_run_start()
        paid = tenant_request("p", "paid", input_length=32)
        free = tenant_request("f", "free", input_length=32)
        for request in (paid, free):
            scheduler.on_request_submitted(request)
            finish(scheduler, request, generated=16)
        assert scheduler.counter("paid") == pytest.approx((32 + 16) / 2.0)
        assert scheduler.counter("free") == pytest.approx(32 + 16)

    def test_anonymous_tenant_for_tenantless_requests(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        request = tenant_request("r0", None, input_length=8)
        scheduler.on_request_submitted(request)
        finish(scheduler, request, generated=4)
        assert scheduler.counter(ANONYMOUS_TENANT) == pytest.approx(12)

    def test_on_run_start_resets_counters(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        request = tenant_request("r0", "alice")
        scheduler.on_request_submitted(request)
        finish(scheduler, request, generated=4)
        assert scheduler.counter("alice") > 0
        scheduler.on_run_start()
        assert scheduler.counter("alice") == 0.0


class TestArrivalLift:
    def test_lagged_tenant_lifted_to_active_minimum(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        # alice accrues debt and stays active (a second request in flight).
        first, second = (
            tenant_request("a0", "alice"),
            tenant_request("a1", "alice"),
        )
        scheduler.on_request_submitted(first)
        scheduler.on_request_submitted(second)
        finish(scheduler, first, generated=16)
        assert scheduler.counter("alice") == pytest.approx(48)
        # bob arrives fresh: lifted to the active minimum, not admitted at 0.
        scheduler.on_request_submitted(tenant_request("b0", "bob"))
        assert scheduler.counter("bob") == pytest.approx(48)

    def test_lift_never_lowers_a_counter(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        # carol accrued heavy debt, then went idle.
        heavy = tenant_request("c0", "carol", input_length=64)
        scheduler.on_request_submitted(heavy)
        finish(scheduler, heavy, generated=64)
        carol_debt = scheduler.counter("carol")
        # alice is active with light debt.
        light = tenant_request("a0", "alice", input_length=8)
        keeper = tenant_request("a1", "alice", input_length=8)
        scheduler.on_request_submitted(light)
        scheduler.on_request_submitted(keeper)
        finish(scheduler, light, generated=4)
        # carol returns: the floor is below her debt, which must stick.
        scheduler.on_request_submitted(tenant_request("c1", "carol"))
        assert scheduler.counter("carol") == pytest.approx(carol_debt)

    def test_no_lift_while_tenant_is_active(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        # alice becomes active while bob is still at zero debt...
        bob = tenant_request("b0", "bob")
        bob_keeper = tenant_request("b1", "bob")
        scheduler.on_request_submitted(bob)
        scheduler.on_request_submitted(bob_keeper)
        scheduler.on_request_submitted(tenant_request("a0", "alice"))
        # ...then bob accrues debt.  A second alice arrival while she is
        # STILL active must not lift her to bob's counter.
        finish(scheduler, bob, generated=32)
        assert scheduler.counter("bob") > 0
        scheduler.on_request_submitted(tenant_request("a1", "alice"))
        assert scheduler.counter("alice") == 0.0

    def test_first_arrival_with_no_active_tenants_stays_at_zero(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        scheduler.on_request_submitted(tenant_request("a0", "alice"))
        assert scheduler.counter("alice") == 0.0


class TestAdmissionOrdering:
    def test_lowest_counter_tenant_admitted_first(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        # alice has debt; bob does not.  Bob's request jumps the queue.
        # (Bob arrives before alice's charge lands, so the arrival lift sees
        # a zero floor and leaves his counter at zero.)
        debt = tenant_request("a0", "alice")
        keeper = tenant_request("a1", "alice")
        bob = tenant_request("b0", "bob")
        scheduler.on_request_submitted(debt)
        scheduler.on_request_submitted(keeper)
        scheduler.on_request_submitted(bob)
        finish(scheduler, debt, generated=32)
        admitted = scheduler.schedule(make_context([keeper, bob]))
        assert admitted == [bob, keeper]

    def test_fifo_within_a_tenant(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        first = tenant_request("a0", "alice")
        second = tenant_request("a1", "alice")
        for request in (first, second):
            scheduler.on_request_submitted(request)
        admitted = scheduler.schedule(make_context([first, second]))
        assert admitted == [first, second]

    def test_provisional_charging_rotates_equal_tenants(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        a0 = tenant_request("a0", "alice")
        a1 = tenant_request("a1", "alice")
        b0 = tenant_request("b0", "bob")
        for request in (a0, a1, b0):
            scheduler.on_request_submitted(request)
        # Both tenants at counter 0: after alice's first pick she is
        # provisionally charged, so bob's request comes before her second.
        admitted = scheduler.schedule(make_context([a0, a1, b0]))
        assert admitted == [a0, b0, a1]

    def test_stops_at_first_non_fitting_candidate(self):
        scheduler = VirtualTokenCounterScheduler(watermark=1.0)
        scheduler.on_run_start()
        # bob (lowest counter) does not fit; alice (fits) must NOT be
        # admitted around him — the one-comparison horizon proof depends on
        # this break.  Bob arrives before alice's charge lands so his
        # counter stays at zero.
        blocker = tenant_request("b0", "bob", input_length=900)
        small = tenant_request("a0", "alice", input_length=10)
        alice_debtor = tenant_request("a1", "alice")
        scheduler.on_request_submitted(blocker)
        scheduler.on_request_submitted(alice_debtor)
        scheduler.on_request_submitted(small)
        finish(scheduler, alice_debtor, generated=32)
        running = [tenant_request("r", None, input_length=200)]
        context = make_context([small, blocker], running=running, token_capacity=1000)
        assert scheduler.schedule(context) == []

    def test_bootstrap_admits_oversized_head_into_empty_batch(self):
        scheduler = VirtualTokenCounterScheduler(watermark=0.5)
        scheduler.on_run_start()
        big = tenant_request("a0", "alice", input_length=800)
        scheduler.on_request_submitted(big)
        context = make_context([big], token_capacity=1000)
        assert scheduler.schedule(context) == [big]

    def test_batch_cap_respected(self):
        scheduler = VirtualTokenCounterScheduler(max_running_requests=2)
        scheduler.on_run_start()
        waiting = [tenant_request(f"r{i}", "alice", input_length=8) for i in range(4)]
        for request in waiting:
            scheduler.on_request_submitted(request)
        running = [tenant_request("run", None, input_length=8)]
        admitted = scheduler.schedule(make_context(waiting, running=running))
        assert len(admitted) == 1

    def test_schedule_does_not_mutate_counters(self):
        scheduler = VirtualTokenCounterScheduler()
        scheduler.on_run_start()
        request = tenant_request("a0", "alice")
        scheduler.on_request_submitted(request)
        scheduler.schedule(make_context([request]))
        # Provisional charges are local to the consult.
        assert scheduler.counter("alice") == 0.0


class TestSaturatedHorizon:
    def _saturated_scheduler(self):
        scheduler = VirtualTokenCounterScheduler(watermark=0.9)
        scheduler.on_run_start()
        return scheduler

    def test_zero_without_waiting_or_running(self):
        scheduler = self._saturated_scheduler()
        waiting = [tenant_request("w", "alice")]
        running = [tenant_request("r", None, input_length=100)]
        assert scheduler.saturated_no_admit_horizon(make_context([], running=running), 10) == 0
        assert scheduler.saturated_no_admit_horizon(make_context(waiting), 10) == 0
        assert scheduler.saturated_no_admit_horizon(make_context(waiting, running=running), 0) == 0

    def test_full_horizon_when_head_does_not_fit(self):
        scheduler = self._saturated_scheduler()
        waiting = [tenant_request("w", "alice", input_length=200)]
        scheduler.on_request_submitted(waiting[0])
        running = [tenant_request("r", None, input_length=800)]
        context = make_context(waiting, running=running, token_capacity=1000)
        assert scheduler.saturated_no_admit_horizon(context, 10) == 10

    def test_zero_when_head_fits(self):
        scheduler = self._saturated_scheduler()
        waiting = [tenant_request("w", "alice", input_length=50)]
        scheduler.on_request_submitted(waiting[0])
        running = [tenant_request("r", None, input_length=100)]
        context = make_context(waiting, running=running, token_capacity=1000)
        assert scheduler.saturated_no_admit_horizon(context, 10) == 0

    def test_head_is_lowest_counter_not_queue_front(self):
        scheduler = self._saturated_scheduler()
        # alice (queue front) has debt and a small request; bob has none and
        # a big one.  The proof must test bob's request, the true first pick.
        # Bob goes active before alice's charge lands so he is not lifted.
        big = tenant_request("b0", "bob", input_length=400)
        scheduler.on_request_submitted(big)
        debtor = tenant_request("a0", "alice")
        scheduler.on_request_submitted(debtor)
        finish(scheduler, debtor, generated=64)
        small = tenant_request("a1", "alice", input_length=10)
        scheduler.on_request_submitted(small)
        running = [tenant_request("r", None, input_length=600)]
        context = make_context([small, big], running=running, token_capacity=1000)
        # bob's 400 does not fit over 600 occupied at watermark 0.9 -> whole
        # window proven, even though alice's 10 would fit.
        assert scheduler.saturated_no_admit_horizon(context, 10) == 10

    def test_batch_cap_proves_window(self):
        scheduler = VirtualTokenCounterScheduler(max_running_requests=1)
        scheduler.on_run_start()
        waiting = [tenant_request("w", "alice", input_length=1)]
        scheduler.on_request_submitted(waiting[0])
        running = [tenant_request("r", None, input_length=1)]
        context = make_context(waiting, running=running, token_capacity=1000)
        assert scheduler.saturated_no_admit_horizon(context, 10) == 10

    def test_horizon_does_not_mutate_state(self):
        scheduler = self._saturated_scheduler()
        waiting = [tenant_request("w", "alice", input_length=200)]
        scheduler.on_request_submitted(waiting[0])
        running = [tenant_request("r", None, input_length=800)]
        context = make_context(waiting, running=running, token_capacity=1000)
        before = scheduler.counter("alice")
        scheduler.saturated_no_admit_horizon(context, 10)
        assert scheduler.counter("alice") == before


class TestConstructionAndRegistry:
    def test_registered_names(self):
        names = available_schedulers()
        assert "vtc" in names
        assert "weighted-vtc" in names
        assert isinstance(create_scheduler("vtc"), VirtualTokenCounterScheduler)
        weighted = create_scheduler("weighted-vtc", weights={"u": 2.0})
        assert isinstance(weighted, WeightedServiceCounterScheduler)

    def test_validation(self):
        with pytest.raises(ValueError, match="watermark"):
            VirtualTokenCounterScheduler(watermark=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            VirtualTokenCounterScheduler(prefill_weight=-1.0)
        with pytest.raises(ValueError, match="positive"):
            VirtualTokenCounterScheduler(prefill_weight=0.0, decode_weight=0.0)
        with pytest.raises(ValueError, match="default_weight"):
            WeightedServiceCounterScheduler(default_weight=0.0)
        with pytest.raises(ValueError, match="positive"):
            WeightedServiceCounterScheduler(weights={"u": -1.0})

    def test_describe_mentions_parameters(self):
        assert "95%" in VirtualTokenCounterScheduler(watermark=0.95).describe()
        described = WeightedServiceCounterScheduler(weights={"u": 2.0}).describe()
        assert "weighted-vtc" in described


class TestEngineIntegration:
    def test_untenanted_vtc_matches_aggressive_bit_for_bit(self, platform_7b):
        from repro.analysis.perf import run_fingerprint

        workload = make_workload(num_requests=40)
        digests = {}
        for name in ("aggressive", "vtc"):
            simulator = ServingSimulator(
                platform_7b,
                create_scheduler(name, watermark=0.9),
                token_capacity_override=TINY_CAPACITY,
            )
            digests[name] = run_fingerprint(
                simulator.run_closed_loop(workload, num_clients=8)
            )
        assert digests["vtc"] == digests["aggressive"]

    @pytest.mark.parametrize("name", ["vtc", "weighted-vtc"])
    def test_fast_path_bit_identity_with_tenants(self, platform_7b, name):
        from repro.analysis.perf import run_fingerprint
        from repro.workloads.sharegpt import generate_sharegpt_workload
        from repro.workloads.spec import scale_workload

        population = generate_tenant_population(
            8, num_apps=2, abusive_users=1, abusive_share=0.5
        )
        workload = assign_tenants(
            scale_workload(generate_sharegpt_workload(40, seed=3), 0.25),
            population,
            seed=1,
        )
        digests = {}
        for fast_path in (True, False):
            simulator = ServingSimulator(
                platform_7b,
                create_scheduler(name, watermark=0.9),
                token_capacity_override=TINY_CAPACITY,
                fast_path=fast_path,
            )
            digests[fast_path] = run_fingerprint(
                simulator.run_closed_loop(workload, num_clients=8)
            )
        assert digests[True] == digests[False]

    def test_fair_serving_evens_out_heavy_tail(self, platform_7b):
        """End to end: VTC spreads finish order across tenants vs FCFS."""
        from repro.serving.sla import SLASpec
        from repro.workloads.arrivals import assign_poisson_arrivals
        from repro.workloads.sharegpt import generate_sharegpt_workload
        from repro.workloads.spec import scale_workload

        population = generate_tenant_population(
            12, abusive_users=1, abusive_share=0.6
        )
        workload = assign_tenants(
            scale_workload(generate_sharegpt_workload(300, seed=21), 1 / 16),
            population,
            seed=13,
        )
        workload = assign_poisson_arrivals(workload, request_rate=80.0, seed=9)
        sla = SLASpec(ttft_limit=1.0, mtpot_limit=0.5)
        jain = {}
        for name in ("aggressive", "vtc"):
            simulator = ServingSimulator(
                platform_7b,
                create_scheduler(name, watermark=0.95),
                token_capacity_override=TINY_CAPACITY // 4,
                chunked_prefill_tokens=512,
            )
            result = simulator.run_open_loop(workload)
            assert result.completed
            jain[name] = result.fairness_summary(sla).jain_goodput
        assert jain["vtc"] > jain["aggressive"]

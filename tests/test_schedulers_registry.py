"""Tests for the scheduler registry and the base-class utilities."""

from __future__ import annotations

import pytest

from repro.core.past_future import PastFutureScheduler
from repro.engine.request import Request
from repro.schedulers.aggressive import AggressiveScheduler
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.conservative import ConservativeScheduler
from repro.schedulers.oracle import OracleScheduler
from repro.schedulers.registry import available_schedulers, create_scheduler
from tests.conftest import make_spec


class TestRegistry:
    def test_all_expected_names_present(self):
        assert available_schedulers() == [
            "aggressive",
            "conservative",
            "oracle",
            "past-future",
            "vtc",
            "weighted-vtc",
        ]

    def test_create_past_future(self):
        scheduler = create_scheduler("past-future", reserved_fraction=0.1)
        assert isinstance(scheduler, PastFutureScheduler)
        assert scheduler.reserved_fraction == 0.1

    def test_create_aggressive(self):
        scheduler = create_scheduler("aggressive", watermark=0.9)
        assert isinstance(scheduler, AggressiveScheduler)
        assert scheduler.watermark == 0.9

    def test_create_conservative(self):
        scheduler = create_scheduler("conservative", overcommit=1.25)
        assert isinstance(scheduler, ConservativeScheduler)
        assert scheduler.overcommit == 1.25

    def test_create_oracle(self):
        assert isinstance(create_scheduler("oracle"), OracleScheduler)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            create_scheduler("nonexistent")

    def test_lazy_export_from_schedulers_package(self):
        import repro.schedulers as schedulers

        assert schedulers.PastFutureScheduler is PastFutureScheduler
        with pytest.raises(AttributeError):
            schedulers.NoSuchScheduler  # noqa: B018


class TestSchedulingContext:
    def test_free_tokens(self):
        context = SchedulingContext(
            time=0.0, step=0, running=[], waiting=[], token_capacity=100, used_tokens=30
        )
        assert context.free_tokens == 70

    def test_running_context_tokens(self):
        request = Request(spec=make_spec(input_length=12, output_length=4), arrival_time=0.0)
        context = SchedulingContext(
            time=0.0, step=0, running=[request], waiting=[], token_capacity=100, used_tokens=12
        )
        assert context.running_context_tokens == 12


class TestBatchCapUtility:
    class _DummyScheduler(Scheduler):
        name = "dummy"

        def schedule(self, context):
            return self._respect_batch_cap(context, list(context.waiting))

    def _context(self, num_running: int, num_waiting: int) -> SchedulingContext:
        running = [
            Request(spec=make_spec(request_id=f"r{i}"), arrival_time=0.0)
            for i in range(num_running)
        ]
        waiting = [
            Request(spec=make_spec(request_id=f"w{i}"), arrival_time=0.0)
            for i in range(num_waiting)
        ]
        return SchedulingContext(
            time=0.0, step=0, running=running, waiting=waiting,
            token_capacity=10_000, used_tokens=0,
        )

    def test_unlimited_by_default(self):
        scheduler = self._DummyScheduler()
        assert len(scheduler.schedule(self._context(0, 7))) == 7

    def test_cap_limits_total_running(self):
        scheduler = self._DummyScheduler()
        scheduler.max_running_requests = 5
        assert len(scheduler.schedule(self._context(3, 7))) == 2

    def test_cap_already_met(self):
        scheduler = self._DummyScheduler()
        scheduler.max_running_requests = 2
        assert scheduler.schedule(self._context(3, 7)) == []


class TestRegistryKwargValidation:
    """The shared registry helper rejects unknown kwargs with a helpful error."""

    def test_unknown_kwarg_lists_accepted_names(self):
        import pytest

        from repro.schedulers.registry import create_scheduler

        with pytest.raises(TypeError, match="accepted") as excinfo:
            create_scheduler("aggressive", bogus_knob=1)
        assert "bogus_knob" in str(excinfo.value)

    def test_autoscale_policy_unknown_kwarg(self):
        import pytest

        from repro.serving.autoscale import create_autoscale_policy

        with pytest.raises(TypeError, match="accepted"):
            create_autoscale_policy("reactive", window_size=3)


class TestRegistrySuggestions:
    """Near-miss names and kwargs get a did-you-mean suggestion."""

    def test_misspelled_scheduler_name_suggests_closest(self):
        with pytest.raises(KeyError, match="did you mean 'aggressive'"):
            create_scheduler("agressive")

    def test_misspelled_kwarg_suggests_closest(self):
        with pytest.raises(TypeError, match="did you mean 'watermark'"):
            create_scheduler("aggressive", watermrak=0.9)

    def test_misspelled_router_name_suggests_closest(self):
        from repro.serving.routing import create_router

        with pytest.raises(KeyError, match="did you mean 'memory-aware'"):
            create_router("memory-awar")

    def test_no_suggestion_for_distant_name(self):
        with pytest.raises(KeyError) as excinfo:
            create_scheduler("zzzzzz")
        assert "did you mean" not in str(excinfo.value)
        # The sorted known-name list is still present for grepping.
        assert "known:" in str(excinfo.value)

"""Tests for the replica autoscaling subsystem (policies, driver, fleet)."""

from __future__ import annotations

import pytest

from repro.serving.autoscale import (
    AUTOSCALE_POLICY_REGISTRY,
    Autoscaler,
    AutoscalerPolicy,
    FleetView,
    PredictivePolicy,
    ReactivePolicy,
    StaticPolicy,
    available_autoscale_policies,
    create_autoscale_policy,
)
from repro.serving.cluster import ClusterSimulator, ReplicaState
from repro.serving.routing import ReplicaSnapshot, ReplicaView, Router
from repro.serving.sla import SLASpec
from repro.workloads.arrivals import assign_bursty_arrivals
from repro.workloads.spec import RequestSpec, Workload
from tests.conftest import make_workload

SLA = SLASpec(ttft_limit=10.0, mtpot_limit=1.5)


def idle_snapshot(replica_id: int, capacity: int = 1000) -> ReplicaSnapshot:
    return ReplicaSnapshot(replica_id=replica_id, token_capacity=capacity, used_tokens=0)


def saturated_snapshot(replica_id: int, capacity: int = 1000) -> ReplicaSnapshot:
    return ReplicaSnapshot(
        replica_id=replica_id,
        token_capacity=capacity,
        used_tokens=capacity,
        running_current_tokens=(capacity,),
        running_generated_tokens=(4,),
    )


def view(
    time: float = 0.0,
    num_active: int = 2,
    saturation_rate: float = 0.0,
    arrival_rate: float = 0.0,
    mean_arrival_tokens: float = 0.0,
    num_warming: int = 0,
    capacity: int = 1000,
) -> FleetView:
    return FleetView(
        time=time,
        snapshots=tuple(idle_snapshot(i, capacity) for i in range(num_active)),
        num_warming=num_warming,
        saturation_rate=saturation_rate,
        arrival_rate=arrival_rate,
        mean_arrival_tokens=mean_arrival_tokens,
    )


class SchedulePolicy(AutoscalerPolicy):
    """Deterministic test policy: target size follows a (time, size) script."""

    name = "schedule"

    def __init__(self, schedule: list[tuple[float, int]]) -> None:
        self.schedule = sorted(schedule)

    def target_size(self, fleet_view: FleetView) -> int:
        size = fleet_view.provisioned
        for threshold, target in self.schedule:
            if fleet_view.time >= threshold:
                size = target
        return size


class FixedRouter(Router):
    """Always returns the same replica id, valid or not."""

    name = "fixed"

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id

    def select_replica(self, spec, snapshots):
        return self.replica_id


def instant_workload(num_requests: int, prompt: int = 48, output: int = 64) -> Workload:
    """All requests arrive at t=0 (maximum scaling pressure)."""
    specs = [
        RequestSpec(
            request_id=f"a-{i}",
            input_length=prompt,
            output_length=output,
            max_new_tokens=output,
            arrival_time=0.0,
        )
        for i in range(num_requests)
    ]
    return Workload(name="autoscale-test", requests=specs)


def make_cluster(platform_7b, autoscaler=None, num_replicas=3, router="round-robin", **kwargs):
    return ClusterSimulator(
        platform=platform_7b,
        num_replicas=num_replicas,
        router=router,
        scheduler_name="conservative",
        token_capacity_override=2048,
        autoscaler=autoscaler,
        **kwargs,
    )


class TestFleetView:
    def test_counts_and_capacity(self):
        v = view(num_active=3, num_warming=2)
        assert v.num_active == 3
        assert v.provisioned == 5
        assert v.queued_requests == 0
        assert v.replica_capacity == 1000

    def test_saturated_fraction(self):
        v = FleetView(
            time=0.0, snapshots=(idle_snapshot(0), saturated_snapshot(1))
        )
        assert v.saturated_fraction == pytest.approx(0.5)

    def test_empty_fleet_is_safe(self):
        v = FleetView(time=0.0, snapshots=())
        assert v.saturated_fraction == 0.0
        assert v.replica_capacity == 0


class TestStaticPolicy:
    def test_holds_configured_size(self):
        policy = StaticPolicy(size=4)
        assert policy.target_size(view(num_active=2)) == 4

    def test_defaults_to_current_size(self):
        policy = StaticPolicy()
        assert policy.target_size(view(num_active=3, num_warming=1)) == 4

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            StaticPolicy(size=0)


class TestReactivePolicy:
    def test_scales_up_on_saturation(self):
        policy = ReactivePolicy(scale_up_threshold=0.5, cooldown=1.0)
        policy.on_run_start()
        assert policy.target_size(view(time=1.0, num_active=2, saturation_rate=0.8)) == 3

    def test_scales_down_when_idle(self):
        policy = ReactivePolicy(scale_down_threshold=0.05, cooldown=1.0)
        policy.on_run_start()
        assert policy.target_size(view(time=1.0, num_active=3, saturation_rate=0.0)) == 2

    def test_holds_inside_hysteresis_band(self):
        policy = ReactivePolicy(scale_up_threshold=0.5, scale_down_threshold=0.05)
        policy.on_run_start()
        assert policy.target_size(view(time=1.0, num_active=2, saturation_rate=0.3)) == 2

    def test_cooldown_blocks_consecutive_actions(self):
        policy = ReactivePolicy(scale_up_threshold=0.5, cooldown=5.0)
        policy.on_run_start()
        assert policy.target_size(view(time=1.0, num_active=2, saturation_rate=1.0)) == 3
        # Saturation persists, but the cooldown has not elapsed.
        assert policy.target_size(view(time=3.0, num_active=3, saturation_rate=1.0)) == 3
        assert policy.target_size(view(time=6.5, num_active=3, saturation_rate=1.0)) == 4

    def test_queued_work_blocks_scale_down(self):
        policy = ReactivePolicy(scale_down_threshold=0.05, cooldown=0.0)
        policy.on_run_start()
        queued = FleetView(
            time=1.0,
            snapshots=(
                ReplicaSnapshot(
                    replica_id=0,
                    token_capacity=1000,
                    used_tokens=0,
                    waiting_prompt_tokens=(10,),
                ),
            ),
            saturation_rate=0.0,
        )
        assert policy.target_size(queued) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="thresholds"):
            ReactivePolicy(scale_up_threshold=0.2, scale_down_threshold=0.5)
        with pytest.raises(ValueError, match="step"):
            ReactivePolicy(step=0)


class TestPredictivePolicy:
    def test_scales_up_from_arrival_forecast(self):
        # Empty history -> expected output = default_length (100).  Forecast:
        # 10 req/s * 1 s horizon * (50 + 100) tokens = 1500 tokens, which
        # needs two 1000-token replicas at full utilisation.
        policy = PredictivePolicy(target_utilization=1.0, horizon=1.0, default_length=100)
        policy.on_run_start()
        v = view(time=1.0, num_active=1, arrival_rate=10.0, mean_arrival_tokens=50.0)
        assert policy.predicted_fleet_demand_tokens(v) == pytest.approx(1500.0)
        assert policy.target_size(v) == 2

    def test_resident_demand_counts_queued_prompts(self):
        policy = PredictivePolicy(target_utilization=1.0, horizon=0.0, default_length=100)
        policy.on_run_start()
        loaded = FleetView(
            time=1.0,
            snapshots=(
                ReplicaSnapshot(
                    replica_id=0,
                    token_capacity=1000,
                    used_tokens=900,
                    running_current_tokens=(900,),
                    running_generated_tokens=(10,),
                    waiting_prompt_tokens=(800, 800),
                ),
            ),
        )
        # The queued burst makes demand exceed one replica before saturation.
        assert policy.predicted_fleet_demand_tokens(loaded) > 1000
        assert policy.target_size(loaded) >= 2

    def test_scale_down_is_stepwise_with_cooldown(self):
        policy = PredictivePolicy(
            target_utilization=1.0, horizon=0.0, default_length=100, scale_down_cooldown=5.0
        )
        policy.on_run_start()
        idle = view(time=1.0, num_active=4)
        assert policy.target_size(idle) == 3  # one step down, not straight to 1
        assert policy.target_size(view(time=2.0, num_active=4)) == 4  # cooldown holds
        assert policy.target_size(view(time=7.0, num_active=4)) == 3

    def test_learns_from_finished_requests(self):
        from repro.engine.request import Request
        from tests.conftest import make_spec

        policy = PredictivePolicy(default_length=1000)
        policy.on_run_start()
        request = Request(spec=make_spec(output_length=4), arrival_time=0.0)
        request.admit(0.0)
        request.note_prefill(request.recompute_tokens)
        for step in range(4):
            request.deliver_token(0.1 * (step + 1))
        request.finish(0.4)
        policy.on_request_finished(request, 0.4)
        # The window now holds one real (short) observation, not the default.
        assert policy._forecaster.history.mean() == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="target_utilization"):
            PredictivePolicy(target_utilization=0.0)
        with pytest.raises(ValueError, match="horizon"):
            PredictivePolicy(horizon=-1.0)


class TestRegistry:
    def test_create_by_name(self):
        assert isinstance(create_autoscale_policy("static"), StaticPolicy)
        assert isinstance(create_autoscale_policy("reactive"), ReactivePolicy)
        assert isinstance(create_autoscale_policy("predictive"), PredictivePolicy)

    def test_kwargs_forwarded(self):
        policy = create_autoscale_policy("reactive", cooldown=9.0)
        assert policy.cooldown == 9.0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown autoscale policy"):
            create_autoscale_policy("magic")

    def test_available_names(self):
        assert available_autoscale_policies() == sorted(AUTOSCALE_POLICY_REGISTRY)


class TestAutoscalerDriver:
    def test_clamps_to_bounds(self):
        autoscaler = Autoscaler(StaticPolicy(size=99), min_replicas=2, max_replicas=4)
        autoscaler.on_run_start()
        assert autoscaler.evaluate(1.0, [idle_snapshot(0)]) == 4
        low = Autoscaler(StaticPolicy(size=1), min_replicas=2, max_replicas=4)
        low.on_run_start()
        assert low.evaluate(1.0, [idle_snapshot(0)]) == 2

    def test_decision_cadence_advances(self):
        autoscaler = Autoscaler(StaticPolicy(size=1), interval=2.0)
        autoscaler.on_run_start()
        assert autoscaler.next_decision_time == 2.0
        autoscaler.evaluate(2.0, [idle_snapshot(0)])
        assert autoscaler.next_decision_time == 4.0
        # A late evaluation skips past every missed slot.
        autoscaler.evaluate(9.0, [idle_snapshot(0)])
        assert autoscaler.next_decision_time == 10.0

    def test_arrival_window_statistics(self):
        autoscaler = Autoscaler(StaticPolicy(size=1), sample_window=2.0)
        autoscaler.on_run_start()
        autoscaler.note_arrival(0.5, 1.0, 100)
        autoscaler.note_arrival(1.0, 0.0, 200)
        # Only 1.5 s have elapsed: the rate divides by the elapsed span, not
        # the nominal 2 s window, so the opening burst is not diluted.
        v = autoscaler.make_view(1.5, [idle_snapshot(0)])
        assert v.saturation_rate == pytest.approx(0.5)
        assert v.arrival_rate == pytest.approx(2 / 1.5)
        assert v.mean_arrival_tokens == pytest.approx(150.0)
        # Past one full window the nominal span applies...
        autoscaler.note_arrival(3.5, 0.0, 100)
        late = autoscaler.make_view(4.0, [idle_snapshot(0)])
        assert late.arrival_rate == pytest.approx(1 / 2.0)
        # ...and samples age out entirely.
        stale = autoscaler.make_view(10.0, [idle_snapshot(0)])
        assert stale.saturation_rate == 0.0
        assert stale.arrival_rate == 0.0

    def test_decisions_recorded(self):
        autoscaler = Autoscaler(StaticPolicy(size=3), min_replicas=1, max_replicas=8)
        autoscaler.on_run_start()
        autoscaler.evaluate(1.0, [idle_snapshot(0), idle_snapshot(1)])
        (decision,) = autoscaler.decisions
        assert decision.target == 3
        assert decision.provisioned == 2
        assert decision.delta == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="interval"):
            Autoscaler(StaticPolicy(), interval=0.0)
        with pytest.raises(ValueError, match="max_replicas"):
            Autoscaler(StaticPolicy(), min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError, match="warmup_delay"):
            Autoscaler(StaticPolicy(), warmup_delay=-1.0)

    def test_policy_by_registry_name(self):
        autoscaler = Autoscaler("reactive")
        assert isinstance(autoscaler.policy, ReactivePolicy)

    def test_predictive_adopts_warmup_horizon(self):
        autoscaler = Autoscaler(PredictivePolicy(), warmup_delay=7.0)
        assert "horizon=7s" in autoscaler.policy.describe()


class TestElasticCluster:
    def test_initial_size_must_fit_bounds(self, platform_7b):
        autoscaler = Autoscaler(StaticPolicy(), min_replicas=1, max_replicas=2)
        with pytest.raises(ValueError, match="bounds"):
            make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=5)

    def test_scale_up_launches_warming_replicas(self, platform_7b):
        autoscaler = Autoscaler(
            SchedulePolicy([(0.0, 3)]), interval=0.5, max_replicas=4, warmup_delay=1.0
        )
        cluster = make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=1)
        result = cluster.run_open_loop(instant_workload(12))
        assert result.completed
        assert len(result.finished_requests) == 12
        assert result.num_replicas == 3
        # Replicas launched mid-run warmed up before serving.
        for life in result.lifetimes[1:]:
            assert life.ready_at == pytest.approx(life.launched_at + 1.0)

    def test_warming_replica_receives_no_work(self, platform_7b):
        # A replica that never finishes warming must never be routed to.
        autoscaler = Autoscaler(
            SchedulePolicy([(0.0, 2)]), interval=0.5, max_replicas=2, warmup_delay=1e6
        )
        cluster = make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=1)
        result = cluster.run_open_loop(instant_workload(8))
        assert len(result.finished_requests) == 8
        assert result.num_replicas == 2
        assert result.replicas[1].requests == []

    def test_scale_down_drains_without_dropping_work(self, platform_7b):
        # Three replicas each pick up instant-burst work; at t=0.5 the fleet
        # is told to shrink to one.  The drained replicas must finish every
        # resident request before retiring, and nothing may be lost.
        autoscaler = Autoscaler(
            SchedulePolicy([(0.5, 1)]), interval=0.5, min_replicas=1, max_replicas=3
        )
        cluster = make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=3)
        result = cluster.run_open_loop(instant_workload(18))
        assert result.completed
        assert len(result.finished_requests) == 18
        retired = [life for life in result.lifetimes if life.retired_at is not None]
        assert retired, "the scale-down should have retired at least one replica"
        for life in retired:
            replica_result = result.replicas[life.replica_id]
            assert replica_result.requests, "drained replicas held resident work"
            assert all(r.is_finished for r in replica_result.requests)
            assert all(r.finish_time <= life.retired_at for r in replica_result.requests)

    def test_drained_replica_gets_no_new_placements(self, platform_7b):
        autoscaler = Autoscaler(
            SchedulePolicy([(0.5, 1)]), interval=0.5, min_replicas=1, max_replicas=3
        )
        cluster = make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=3)
        late = RequestSpec(
            request_id="late",
            input_length=48,
            output_length=8,
            max_new_tokens=8,
            arrival_time=1.0,
        )
        workload = Workload(
            name="drain-test", requests=list(instant_workload(18).requests) + [late]
        )
        result = cluster.run_open_loop(workload)
        assert len(result.finished_requests) == 19
        drained_ids = {life.replica_id for life in result.lifetimes if life.retired_at is not None}
        late_request = next(
            (i, r)
            for i, replica in enumerate(result.replicas)
            for r in replica.requests
            if r.spec.request_id == "late"
        )
        assert late_request[0] not in drained_ids

    def test_router_returning_unroutable_replica_raises(self, platform_7b):
        cluster = make_cluster(platform_7b, router=FixedRouter(1), num_replicas=2)
        cluster.replicas[1].state = ReplicaState.DRAINING
        with pytest.raises(RuntimeError, match="draining and must not receive new work"):
            cluster.run_open_loop(instant_workload(1))

    def test_router_returning_retired_replica_raises(self, platform_7b):
        cluster = make_cluster(platform_7b, router=FixedRouter(1), num_replicas=2)
        cluster.replicas[1].state = ReplicaState.RETIRED
        with pytest.raises(RuntimeError, match="retired and must not receive new work"):
            cluster.run_open_loop(instant_workload(1))

    def test_router_returning_unknown_replica_still_raises(self, platform_7b):
        cluster = make_cluster(platform_7b, router=FixedRouter(99), num_replicas=2)
        with pytest.raises(RuntimeError, match="invalid replica"):
            cluster.run_open_loop(instant_workload(1))

    def test_round_robin_survives_non_contiguous_fleet(self, platform_7b):
        # Shrink 3 -> 2 then grow back to 3: the replacement gets a fresh id,
        # so the routable set is non-contiguous, and round-robin must keep
        # cycling without error.
        autoscaler = Autoscaler(
            SchedulePolicy([(0.25, 2), (1.5, 3)]),
            interval=0.25,
            min_replicas=1,
            max_replicas=4,
        )
        cluster = make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=3)
        workload = assign_bursty_arrivals(
            make_workload(num_requests=40), base_rate=5.0, burst_rate=50.0, seed=3
        )
        result = cluster.run_open_loop(workload)
        assert result.completed
        assert len(result.finished_requests) == 40
        assert result.num_replicas >= 4  # a replacement replica was launched
        retired_ids = {life.replica_id for life in result.lifetimes if life.retired_at is not None}
        assert retired_ids, "the shrink phase should have retired a replica"

    def test_fleet_timeline_and_replica_seconds(self, platform_7b):
        autoscaler = Autoscaler(
            SchedulePolicy([(0.5, 1)]), interval=0.5, min_replicas=1, max_replicas=3
        )
        cluster = make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=3)
        # An instant burst followed by a late tail only the survivor serves,
        # so the makespan extends past the drained replicas' retirements.
        tail = [
            RequestSpec(
                request_id=f"tail-{i}",
                input_length=48,
                output_length=16,
                max_new_tokens=16,
                arrival_time=3.0 + 0.1 * i,
            )
            for i in range(6)
        ]
        workload = Workload(
            name="timeline-test", requests=list(instant_workload(18).requests) + tail
        )
        result = cluster.run_open_loop(workload)
        times = [sample.time for sample in result.fleet_timeline]
        assert times == sorted(times)
        assert result.fleet_timeline[0].provisioned == 3
        assert result.fleet_timeline[-1].active == 1
        # The shrink must make the run cheaper than a static 3-replica fleet,
        # but no cheaper than a single always-on replica.
        assert result.duration < result.replica_seconds < 3 * result.duration
        assert 1.0 < result.avg_fleet_size < 3.0
        summary = result.fleet_summary(SLA)
        assert summary.replica_seconds == pytest.approx(result.replica_seconds)
        assert summary.goodput_per_replica_second == pytest.approx(
            result.goodput_per_replica_second(SLA)
        )

    def test_static_fleet_replica_seconds_match_makespan(self, platform_7b):
        cluster = make_cluster(platform_7b, num_replicas=2)
        result = cluster.run_closed_loop(make_workload(num_requests=8), num_clients=2)
        assert result.replica_seconds == pytest.approx(2 * result.duration)
        assert result.avg_fleet_size == pytest.approx(2.0)

    def test_goodput_per_replica_second_rewards_elasticity(self, platform_7b):
        # Same trace, same router: a fleet that sheds two idle replicas must
        # score at least as high per replica-second as the static fleet.
        workload = instant_workload(18)
        static = make_cluster(platform_7b, num_replicas=3).run_open_loop(workload)
        autoscaler = Autoscaler(
            SchedulePolicy([(0.5, 1)]), interval=0.5, min_replicas=1, max_replicas=3
        )
        elastic = make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=3).run_open_loop(
            instant_workload(18)
        )
        assert elastic.goodput_per_replica_second(SLA) >= static.goodput_per_replica_second(SLA)

    def test_autoscaled_result_describes_policy(self, platform_7b):
        autoscaler = Autoscaler(ReactivePolicy(), interval=0.5, max_replicas=3)
        cluster = make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=2)
        result = cluster.run_open_loop(instant_workload(6))
        assert result.autoscaler is not None
        assert "reactive" in result.autoscaler
        assert "autoscaled by" in result.describe()


class TestCapacityNormalisedView:
    def test_capacity_totals(self):
        v = FleetView(
            time=0.0,
            snapshots=(idle_snapshot(0, 1000), idle_snapshot(1, 250)),
            num_warming=1,
            warming_capacity=1000,
            launch_capacity=250,
        )
        assert v.active_capacity == 1250
        assert v.provisioned_capacity == 2250
        assert not v.is_homogeneous

    def test_is_homogeneous_requires_uniform_capacities(self):
        uniform = FleetView(
            time=0.0,
            snapshots=(idle_snapshot(0), idle_snapshot(1)),
            num_warming=1,
            warming_capacity=1000,
            launch_capacity=1000,
        )
        assert uniform.is_homogeneous
        mixed_launch = FleetView(
            time=0.0,
            snapshots=(idle_snapshot(0), idle_snapshot(1)),
            launch_capacity=250,
        )
        assert not mixed_launch.is_homogeneous

    def test_predictive_sizes_in_capacity_units_on_mixed_fleet(self):
        # Forecast demand: 10 req/s * 1 s * (50 + 100) = 1500 tokens.  The
        # active fleet provisions 1250 tokens (one big, one small replica),
        # so the 250-token deficit costs exactly one 250-token launch.
        policy = PredictivePolicy(target_utilization=1.0, horizon=1.0, default_length=100)
        policy.on_run_start()
        v = FleetView(
            time=1.0,
            snapshots=(idle_snapshot(0, 1000), idle_snapshot(1, 250)),
            arrival_rate=10.0,
            mean_arrival_tokens=50.0,
            launch_capacity=250,
        )
        assert policy.target_size(v) == 3

        # The same 250-token deficit still costs exactly one launch when the
        # next launch is a 2000-token replica: the policy buys
        # ceil(deficit / launch_capacity) = ceil(250 / 2000) = 1.
        bigger_launch = FleetView(
            time=1.0,
            snapshots=(idle_snapshot(0, 1000), idle_snapshot(1, 250)),
            arrival_rate=10.0,
            mean_arrival_tokens=50.0,
            launch_capacity=2000,
        )
        assert policy.target_size(bigger_launch) == 3  # ceil(250 / 2000) = 1 launch

    def test_predictive_homogeneous_arithmetic_unchanged(self):
        # On a homogeneous fleet the capacity-unit branch must not engage:
        # the replica-count formula of PR 2 decides (here: 1500 tokens over
        # 1000-token replicas -> 2).
        policy = PredictivePolicy(target_utilization=1.0, horizon=1.0, default_length=100)
        policy.on_run_start()
        v = FleetView(
            time=1.0,
            snapshots=(idle_snapshot(0, 1000),),
            arrival_rate=10.0,
            mean_arrival_tokens=50.0,
            launch_capacity=1000,
        )
        assert v.is_homogeneous
        assert policy.target_size(v) == 2

    def test_cluster_reports_launch_and_warming_capacity(self, platform_7b):
        autoscaler = Autoscaler(
            SchedulePolicy([(0.0, 3)]), interval=0.5, max_replicas=4, warmup_delay=5.0
        )
        cluster = make_cluster(platform_7b, autoscaler=autoscaler, num_replicas=2)
        assert cluster.next_launch_capacity() == 2048
        result = cluster.run_open_loop(instant_workload(6))
        assert result.completed

    def test_heterogeneous_elastic_fleet_cycles_platforms(self):
        from repro.hardware.platform import paper_platforms

        platforms = paper_platforms("7b-a100", "7b-4090")
        autoscaler = Autoscaler(
            SchedulePolicy([(0.05, 4)]), interval=0.1, max_replicas=4, warmup_delay=0.2
        )
        cluster = ClusterSimulator(
            platforms=platforms,
            num_replicas=2,
            router="least-kv-load",
            scheduler_name="conservative",
            capacity_scale=1.0 / 32.0,
            autoscaler=autoscaler,
        )
        # Launch cycle: a100, 4090, a100, 4090 — the next launch (index 2)
        # is an A100 again.
        assert cluster.next_launch_capacity() == int(platforms[0].token_capacity / 32)
        result = cluster.run_open_loop(instant_workload(24, prompt=16, output=8))
        assert result.completed
        assert result.num_replicas == 4
        gpus = [r.platform for r in result.replicas]
        assert sum("A100" in g for g in gpus) == 2
        assert sum("4090" in g for g in gpus) == 2

    def test_heterogeneous_shrink_waits_for_largest_replica_surplus(self):
        # Mixed fleet, zero demand: shrinking retires a replica the policy
        # does not choose, so it must only shrink once the surplus covers
        # the largest active replica (here it always does at zero demand),
        # and must hold when the surplus is smaller than the big replica.
        policy = PredictivePolicy(target_utilization=1.0, horizon=0.0, default_length=100)
        policy.on_run_start()
        idle_mixed = FleetView(
            time=20.0,
            snapshots=(idle_snapshot(0, 1000), idle_snapshot(1, 250)),
            launch_capacity=250,
        )
        assert policy.target_size(idle_mixed) == 1

        policy.on_run_start()
        loaded_big = FleetView(
            time=20.0,
            snapshots=(
                ReplicaView(
                    replica_id=0,
                    token_capacity=1000,
                    used_tokens=400,
                    running_current_tokens=(400,),
                    running_generated_tokens=(399,),
                    running_remaining_cap_tokens=(1,),
                ),
                idle_snapshot(1, 250),
            ),
            launch_capacity=250,
        )
        # Demand ~401 tokens -> surplus ~849 < 1000 (the largest replica):
        # retiring the A100-sized replica would immediately be re-bought.
        assert policy.target_size(loaded_big) == 2

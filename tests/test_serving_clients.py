"""Tests for the closed-loop client pool and open-loop arrival processes."""

from __future__ import annotations

import pytest

from repro.serving.clients import ClosedLoopClientPool, OpenLoopArrivals
from tests.conftest import make_workload


class TestClosedLoopClientPool:
    def test_rejects_bad_parameters(self):
        workload = make_workload(5)
        with pytest.raises(ValueError):
            ClosedLoopClientPool(workload, num_clients=0)
        with pytest.raises(ValueError):
            ClosedLoopClientPool(workload, num_clients=1, think_time=-1.0)

    def test_start_schedules_one_request_per_client(self):
        pool = ClosedLoopClientPool(make_workload(10), num_clients=4)
        pool.start(0.0)
        arrivals = pool.pop_arrivals(0.0)
        assert len(arrivals) == 4
        assert pool.in_flight == 4

    def test_completion_triggers_next_request(self):
        pool = ClosedLoopClientPool(make_workload(10), num_clients=2)
        pool.start(0.0)
        pool.pop_arrivals(0.0)
        pool.on_request_finished(5.0)
        assert pool.pop_arrivals(4.9) == []
        next_batch = pool.pop_arrivals(5.0)
        assert len(next_batch) == 1
        assert next_batch[0].arrival_time == 5.0

    def test_think_time_delays_next_request(self):
        pool = ClosedLoopClientPool(make_workload(10), num_clients=1, think_time=2.0)
        pool.start(0.0)
        pool.pop_arrivals(0.0)
        pool.on_request_finished(5.0)
        assert pool.pop_arrivals(6.9) == []
        assert len(pool.pop_arrivals(7.0)) == 1

    def test_fewer_requests_than_clients(self):
        pool = ClosedLoopClientPool(make_workload(2), num_clients=8)
        pool.start(0.0)
        assert len(pool.pop_arrivals(0.0)) == 2

    def test_drained_lifecycle(self):
        pool = ClosedLoopClientPool(make_workload(2), num_clients=2)
        pool.start(0.0)
        assert not pool.drained
        pool.pop_arrivals(0.0)
        pool.on_request_finished(1.0)
        pool.on_request_finished(2.0)
        assert pool.pop_arrivals(10.0) == []
        assert pool.drained

    def test_next_arrival_time(self):
        pool = ClosedLoopClientPool(make_workload(5), num_clients=1)
        pool.start(3.0)
        assert pool.next_arrival_time() == 3.0
        pool.pop_arrivals(3.0)
        assert pool.next_arrival_time() is None


class TestOpenLoopArrivals:
    def test_poisson_arrival_times_monotone(self):
        arrivals = OpenLoopArrivals(make_workload(50), request_rate=5.0, seed=1)
        times = []
        now = 0.0
        while not arrivals.drained:
            next_time = arrivals.next_arrival_time()
            if next_time is None:
                break
            now = next_time
            batch = arrivals.pop_arrivals(now)
            times.extend(spec.arrival_time for spec in batch)
            for _ in batch:
                arrivals.on_request_finished(now)
        assert times == sorted(times)
        assert len(times) == 50

    def test_poisson_rate_approximately_honoured(self):
        arrivals = OpenLoopArrivals(make_workload(2000), request_rate=10.0, seed=2)
        last = None
        while True:
            next_time = arrivals.next_arrival_time()
            if next_time is None:
                break
            last = next_time
            arrivals.pop_arrivals(next_time)
        # 2000 requests at 10 req/s should span roughly 200 seconds.
        assert 150 < last < 260

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            OpenLoopArrivals(make_workload(5), request_rate=0.0)

    def test_recorded_arrival_times_replayed(self):
        workload = make_workload(3)
        workload.requests = [spec.with_arrival(float(i)) for i, spec in enumerate(workload.requests)]
        arrivals = OpenLoopArrivals(workload)
        assert len(arrivals.pop_arrivals(0.0)) == 1
        assert len(arrivals.pop_arrivals(2.0)) == 2

    def test_missing_arrival_times_rejected(self):
        with pytest.raises(ValueError):
            OpenLoopArrivals(make_workload(3))

    def test_start_is_noop(self):
        arrivals = OpenLoopArrivals(make_workload(3), request_rate=1.0)
        arrivals.start(0.0)
        assert not arrivals.drained

"""Integration tests for the multi-replica cluster simulator."""

from __future__ import annotations

import pytest

from repro.hardware.platform import paper_platforms
from repro.serving.cluster import ClusterSimulator
from repro.serving.routing import (
    REASON_SATURATED,
    ReplicaSnapshot,
    Router,
    RoutingDecision,
)
from repro.serving.sla import SLASpec
from repro.workloads.arrivals import assign_bursty_arrivals
from repro.workloads.spec import RequestSpec, Workload
from tests.conftest import make_workload

SLA = SLASpec(ttft_limit=10.0, mtpot_limit=1.5)


def make_cluster(
    platform_7b,
    router: Router | str = "round-robin",
    num_replicas: int = 4,
    capacity: int = 2048,
    **kwargs,
) -> ClusterSimulator:
    return ClusterSimulator(
        platform=platform_7b,
        num_replicas=num_replicas,
        router=router,
        scheduler_name=kwargs.pop("scheduler_name", "conservative"),
        token_capacity_override=capacity,
        **kwargs,
    )


def stamped_workload(num_requests: int = 24, prompt: int = 48, output: int = 4) -> Workload:
    """Workload whose requests all arrive at t=0 (maximum routing pressure)."""
    specs = [
        RequestSpec(
            request_id=f"c-{i}",
            input_length=prompt,
            output_length=output,
            max_new_tokens=output,
            arrival_time=0.0,
        )
        for i in range(num_requests)
    ]
    return Workload(name="cluster-test", requests=specs)


class TestClusterRuns:
    def test_closed_loop_serves_every_request(self, platform_7b):
        cluster = make_cluster(platform_7b)
        result = cluster.run_closed_loop(make_workload(num_requests=32), num_clients=8)
        assert result.completed
        assert result.submitted_requests == 32
        assert len(result.finished_requests) == 32
        assert not result.rejected

    def test_round_robin_spreads_requests_evenly(self, platform_7b):
        cluster = make_cluster(platform_7b, router="round-robin")
        result = cluster.run_closed_loop(make_workload(num_requests=32), num_clients=4)
        assert [len(r.requests) for r in result.replicas] == [8, 8, 8, 8]

    def test_open_loop_with_recorded_arrivals(self, platform_7b):
        cluster = make_cluster(platform_7b, router="least-outstanding")
        result = cluster.run_open_loop(stamped_workload())
        assert result.completed
        assert len(result.finished_requests) == 24

    def test_memory_aware_cluster_run(self, platform_7b):
        workload = assign_bursty_arrivals(
            make_workload(num_requests=40), base_rate=2.0, burst_rate=50.0, seed=3
        )
        cluster = make_cluster(platform_7b, router="memory-aware")
        result = cluster.run_open_loop(workload)
        assert result.completed
        assert len(result.finished_requests) == 40

    def test_single_replica_matches_single_engine_simulator(self, platform_7b):
        # A 1-replica cluster is the degenerate case and must reproduce the
        # single-engine simulator exactly (same arrivals-join-this-batch
        # semantics), so fleet results extend the paper's numbers.
        from repro.schedulers.registry import create_scheduler
        from repro.serving.server import ServingSimulator

        single = ServingSimulator(
            platform_7b, create_scheduler("conservative"), token_capacity_override=2048
        )
        reference = single.run_closed_loop(make_workload(num_requests=20), num_clients=3)
        cluster = make_cluster(platform_7b, num_replicas=1)
        result = cluster.run_closed_loop(make_workload(num_requests=20), num_clients=3)
        assert result.duration == pytest.approx(reference.duration)
        assert [r.ttft for r in result.finished_requests] == pytest.approx(
            [r.ttft for r in reference.finished_requests]
        )

    def test_replica_clocks_resume_at_arrival_time(self, platform_7b):
        # A lone late request must not be served in the past.
        spec = RequestSpec(
            request_id="late", input_length=8, output_length=4, max_new_tokens=8, arrival_time=5.0
        )
        cluster = make_cluster(platform_7b, num_replicas=2)
        result = cluster.run_open_loop(Workload(name="late", requests=[spec]))
        (request,) = result.finished_requests
        assert request.first_token_time is not None
        assert request.first_token_time >= 5.0
        assert result.duration >= 5.0


class TestConservation:
    def test_requests_conserved_without_rejection(self, platform_7b):
        cluster = make_cluster(platform_7b)
        result = cluster.run_open_loop(stamped_workload())
        assert result.routed_requests + len(result.rejected) == result.submitted_requests == 24

    def test_requests_conserved_with_rejection(self, platform_7b):
        # Capacity 64 and 48-token prompts: one admitted plus one queued
        # request saturates a replica, so most of a 24-request instant burst
        # must be rejected — and every request is still accounted for.
        cluster = make_cluster(platform_7b, capacity=64, reject_when_saturated=True)
        result = cluster.run_open_loop(stamped_workload())
        assert result.rejected
        assert result.routed_requests + len(result.rejected) == result.submitted_requests == 24
        assert len(result.finished_requests) == result.routed_requests
        summary = result.fleet_summary(SLA)
        assert summary.submitted_requests == 24
        assert summary.rejected_requests == len(result.rejected)

    def test_closed_loop_rejection_does_not_deadlock(self, platform_7b):
        cluster = make_cluster(platform_7b, capacity=64, reject_when_saturated=True)
        result = cluster.run_closed_loop(
            make_workload(num_requests=32, input_length=48, output_length=4, max_new_tokens=8),
            num_clients=16,
        )
        assert result.submitted_requests == 32
        # Load shedding must not cascade: rejected clients retry only once the
        # fleet can route again, so a solid share of the workload is served
        # even though 16 concurrent clients genuinely oversubscribe the pools.
        assert len(result.finished_requests) >= 16

    def test_closed_loop_rejection_off_at_feasible_load(self, platform_7b):
        # The same fleet serves everything once concurrency fits capacity.
        cluster = make_cluster(platform_7b, capacity=64, reject_when_saturated=True)
        result = cluster.run_closed_loop(
            make_workload(num_requests=32, input_length=48, output_length=4, max_new_tokens=8),
            num_clients=4,
        )
        assert len(result.finished_requests) == 32
        assert not result.rejected


class TestFleetAggregates:
    def test_fleet_goodput_at_least_worst_replica(self, platform_7b):
        cluster = make_cluster(platform_7b)
        result = cluster.run_closed_loop(make_workload(num_requests=48), num_clients=8)
        per_replica = result.per_replica_goodput(SLA)
        assert result.goodput(SLA) >= min(per_replica)

    def test_fleet_tokens_sum_over_replicas(self, platform_7b):
        cluster = make_cluster(platform_7b)
        result = cluster.run_closed_loop(make_workload(num_requests=32), num_clients=8)
        assert result.total_output_tokens == sum(r.total_output_tokens for r in result.replicas)
        assert result.duration == pytest.approx(max(r.duration for r in result.replicas))

    def test_fleet_summary_consistency(self, platform_7b):
        cluster = make_cluster(platform_7b)
        result = cluster.run_closed_loop(make_workload(num_requests=32), num_clients=8)
        summary = result.fleet_summary(SLA)
        assert summary.num_replicas == 4
        assert summary.finished_requests == len(result.finished_requests)
        assert summary.total_output_tokens == result.total_output_tokens
        assert 0.0 <= summary.sla_attainment <= 1.0
        assert summary.load_imbalance == pytest.approx(result.load_imbalance)
        assert summary.goodput == pytest.approx(result.goodput(SLA))

    def test_describe_mentions_router_and_replicas(self, platform_7b):
        cluster = make_cluster(platform_7b, router="least-kv-load", num_replicas=2)
        result = cluster.run_closed_loop(make_workload(num_requests=8), num_clients=2)
        text = result.describe()
        assert "least-kv-load" in text
        assert "2 replicas" in text


class TestRejectDeferBookkeeping:
    def test_reject_reasons_counted(self, platform_7b):
        cluster = make_cluster(platform_7b, capacity=64, reject_when_saturated=True)
        result = cluster.run_open_loop(stamped_workload())
        assert result.rejected
        assert sum(result.reject_reasons.values()) == len(result.rejected)
        assert result.reject_reasons == {REASON_SATURATED: len(result.rejected)}
        assert result.deferrals == 0

    def test_defer_parks_and_retries_requests(self, platform_7b):
        # A saturated fleet defers instead of queueing; once capacity frees
        # the parked requests are routed and everything finishes.
        cluster = make_cluster(
            platform_7b,
            router="least-kv-load",
            capacity=64,
            num_replicas=2,
        )
        cluster.router.defer_when_saturated = 0.5
        result = cluster.run_open_loop(stamped_workload(num_requests=8))
        assert result.completed
        assert len(result.finished_requests) == 8
        assert result.deferrals > 0
        assert not result.rejected
        assert "deferred" in result.describe()

    def test_deferred_requests_keep_original_arrival_time(self, platform_7b):
        cluster = make_cluster(platform_7b, router="least-kv-load", capacity=64, num_replicas=2)
        cluster.router.defer_when_saturated = 0.5
        result = cluster.run_open_loop(stamped_workload(num_requests=8))
        assert result.deferrals > 0
        # All requests arrived at t=0; deferral must not launder TTFT.
        assert all(r.arrival_time == 0.0 for r in result.requests)

    def test_non_advancing_defer_raises(self, platform_7b):
        class BadDeferRouter(Router):
            name = "bad-defer"

            def decide(self, spec, views, now=0.0):
                return RoutingDecision.defer(until=now)

        cluster = make_cluster(platform_7b, router=BadDeferRouter())
        with pytest.raises(RuntimeError, match="strictly later"):
            cluster.run_open_loop(stamped_workload(num_requests=1))

    def test_cluster_knob_does_not_mutate_shared_router(self, platform_7b):
        # The convenience knob is cluster-level: a caller-supplied router
        # reused by a second simulator must not inherit the first one's
        # admission policy.
        from repro.serving.routing import LeastKVLoadRouter

        router = LeastKVLoadRouter()
        rejecting = make_cluster(
            platform_7b, router=router, capacity=64, reject_when_saturated=True
        )
        assert rejecting.reject_when_saturated
        assert not router.reject_when_saturated
        assert rejecting.run_open_loop(stamped_workload()).rejected
        queueing = make_cluster(platform_7b, router=LeastKVLoadRouter(), capacity=64)
        assert not queueing.reject_when_saturated
        assert not queueing.run_open_loop(stamped_workload()).rejected

    def test_router_level_rejection_without_cluster_knob(self, platform_7b):
        # Rejection is a router policy now: arming the router directly works
        # without the ClusterSimulator convenience flag.
        cluster = make_cluster(platform_7b, router="least-kv-load", capacity=64)
        cluster.router.reject_when_saturated = True
        result = cluster.run_open_loop(stamped_workload())
        assert result.rejected
        assert result.routed_requests + len(result.rejected) == 24


class TestHeterogeneousFleet:
    def test_platforms_cycle_and_capacities_differ(self):
        a100, a100b, rtx = paper_platforms("7b-a100", "7b-a100", "7b-4090")
        cluster = ClusterSimulator(
            platforms=[a100, a100b, rtx],
            num_replicas=3,
            router="least-kv-load",
            scheduler_name="conservative",
            capacity_scale=1.0 / 32.0,
        )
        views = cluster.snapshots()
        assert [v.platform.gpu.name for v in views] == ["A100-80G", "A100-80G", "RTX-4090"]
        assert views[0].token_capacity == views[1].token_capacity
        assert views[2].token_capacity < views[0].token_capacity
        # The 4090 decodes slower than the A100; the fastest platform is 1.0.
        assert views[0].speed_factor == 1.0
        assert 0.0 < views[2].speed_factor < 1.0

    def test_heterogeneous_run_end_to_end(self):
        platforms = paper_platforms("7b-a100", "7b-a100", "7b-4090")
        cluster = ClusterSimulator(
            platforms=platforms,
            num_replicas=3,
            router="memory-aware",
            scheduler_name="conservative",
            capacity_scale=1.0 / 32.0,
        )
        result = cluster.run_closed_loop(make_workload(num_requests=24), num_clients=6)
        assert result.completed
        assert len(result.finished_requests) == 24
        assert "A100-80G" in result.platform and "RTX-4090" in result.platform
        assert {r.platform for r in result.replicas} == {
            p.describe() for p in platforms
        }

    def test_homogeneous_platform_string_unchanged(self, platform_7b):
        cluster = make_cluster(platform_7b, num_replicas=2)
        result = cluster.run_closed_loop(make_workload(num_requests=4), num_clients=2)
        assert result.platform == platform_7b.describe()

    def test_mixed_models_rejected(self):
        from repro.hardware.platform import paper_platform

        with pytest.raises(Exception, match="one model"):
            ClusterSimulator(
                platforms=[paper_platform("7b-a100"), paper_platform("13b-a100")],
                num_replicas=2,
                router="round-robin",
            )

    def test_platform_and_platforms_mutually_exclusive(self, platform_7b):
        with pytest.raises(ValueError, match="exactly one"):
            ClusterSimulator(
                platform=platform_7b, platforms=[platform_7b], num_replicas=1, router="round-robin"
            )
        with pytest.raises(ValueError, match="exactly one"):
            ClusterSimulator(num_replicas=1, router="round-robin")

    def test_capacity_scale_and_override_mutually_exclusive(self, platform_7b):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ClusterSimulator(
                platform=platform_7b,
                num_replicas=1,
                router="round-robin",
                token_capacity_override=100,
                capacity_scale=0.5,
            )

    def test_explicit_cost_model_requires_homogeneous_fleet(self):
        from repro.engine.cost_model import CostModel

        platforms = paper_platforms("7b-a100", "7b-4090")
        with pytest.raises(ValueError, match="homogeneous"):
            ClusterSimulator(
                platforms=platforms,
                num_replicas=2,
                router="round-robin",
                cost_model=CostModel(platforms[0]),
            )


class TestValidation:
    def test_zero_replicas_rejected(self, platform_7b):
        with pytest.raises(ValueError, match="num_replicas"):
            make_cluster(platform_7b, num_replicas=0)

    def test_invalid_router_name_rejected(self, platform_7b):
        with pytest.raises(KeyError, match="unknown router"):
            make_cluster(platform_7b, router="random")

    def test_router_returning_bad_replica_raises(self, platform_7b):
        class BrokenRouter(Router):
            name = "broken"

            def select_replica(self, spec, snapshots):
                return 99

        cluster = make_cluster(platform_7b, router=BrokenRouter())
        with pytest.raises(RuntimeError, match="invalid replica"):
            cluster.run_open_loop(stamped_workload(num_requests=1))

    def test_simulator_is_single_use(self, platform_7b):
        cluster = make_cluster(platform_7b)
        cluster.run_closed_loop(make_workload(num_requests=8), num_clients=2)
        with pytest.raises(RuntimeError, match="single-use"):
            cluster.run_closed_loop(make_workload(num_requests=8), num_clients=2)

    def test_per_replica_schedulers_are_independent(self, platform_7b):
        cluster = make_cluster(platform_7b, scheduler_name="past-future")
        schedulers = {id(replica.engine.scheduler) for replica in cluster.replicas}
        assert len(schedulers) == 4

    def test_snapshot_reflects_engine_state(self, platform_7b):
        cluster = make_cluster(platform_7b, num_replicas=2)
        snapshots = cluster.snapshots()
        assert [s.replica_id for s in snapshots] == [0, 1]
        assert all(isinstance(s, ReplicaSnapshot) for s in snapshots)
        assert all(s.used_tokens == 0 and s.outstanding == 0 for s in snapshots)

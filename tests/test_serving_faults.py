"""Fault injection: crashes, preemptions, stragglers, routing errors, recovery.

Three invariants anchor every test here:

* **determinism** — the same seeded :class:`FaultPlan` yields bit-identical
  results across runs (chaos is an experiment, not noise);
* **conservation** — routed + rejected always equals submitted, no matter
  what dies mid-run (crashed work re-routes or lands in ``reject_reasons``
  with a typed reason, never vanishes);
* **neutrality** — with ``faults=None`` the fault subsystem is byte-invisible
  (zero-default counters, no snapshot block, no extra events).
"""

from __future__ import annotations

import pytest

from repro.analysis.perf import cluster_fingerprint, cluster_snapshot
from repro.engine.cost_model import CostModel, StepWork
from repro.obs import events as obs
from repro.obs.tracer import RingTracer
from repro.serving.cluster import ClusterSimulator
from repro.serving.faults import (
    HEALTH_DEGRADED,
    HEALTH_HEALTHY,
    REASON_NO_REPLICAS,
    REASON_REPLICA_CRASH,
    REASON_RETRIES_EXHAUSTED,
    REASON_UNROUTED,
    FaultInjector,
    FaultPlan,
    Preemption,
    ReplicaCrash,
    RetryPolicy,
    RoutingErrorWindow,
    SlowdownCostModel,
    Straggler,
    hash_fraction,
)
from repro.serving.routing import ReplicaView, Router
from repro.serving.server import SimulationLimits
from repro.workloads.spec import RequestSpec, Workload
from tests.conftest import make_workload
from tests.helpers import assert_conservation, assert_rng_stream_identity


def make_cluster(platform_7b, faults=None, num_replicas=3, **kwargs):
    return ClusterSimulator(
        platform=platform_7b,
        num_replicas=num_replicas,
        router=kwargs.pop("router", "least-outstanding"),
        scheduler_name="conservative",
        token_capacity_override=kwargs.pop("capacity", 2048),
        faults=faults,
        **kwargs,
    )


def spread_workload(num_requests=24, output=32, spacing=0.05):
    """Requests arriving one every ``spacing`` seconds (keeps replicas busy)."""
    specs = [
        RequestSpec(
            request_id=f"f-{i:03d}",
            input_length=32,
            output_length=output,
            max_new_tokens=output,
            arrival_time=i * spacing,
        )
        for i in range(num_requests)
    ]
    return Workload(name="recovery-suite", requests=specs)


class TestPlanAndPolicy:
    def test_hash_fraction_is_deterministic_and_uniformish(self):
        assert hash_fraction(1, "a", 2) == hash_fraction(1, "a", 2)
        assert hash_fraction(1, "a", 2) != hash_fraction(1, "a", 3)
        values = [hash_fraction("u", i) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.3 < sum(values) / len(values) < 0.7

    def test_retry_policy_backoff_caps_and_exhausts(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3, max_attempts=3)
        delays = [policy.delay("r0", attempt) for attempt in range(4)]
        assert delays[3] is None  # budget spent
        base = [0.1, 0.2, 0.3]  # capped at max_delay
        for delay, expected in zip(delays[:3], base):
            assert expected <= delay <= expected * 1.1 + 1e-12  # jitter is additive-only

    def test_retry_jitter_varies_by_request_not_by_call(self):
        policy = RetryPolicy(seed=3)
        assert policy.delay("a", 0) == policy.delay("a", 0)
        assert policy.delay("a", 0) != policy.delay("b", 0)

    def test_plan_validation_and_describe(self):
        with pytest.raises(ValueError):
            Straggler(start=0.0, duration=1.0, replica=0, slowdown=1.0)
        plan = FaultPlan(crashes=[ReplicaCrash(time=1.0, replica=0)])
        assert not plan.empty
        assert "1 crash" in plan.describe()
        assert FaultPlan().empty

    def test_injector_orders_same_instant_crash_before_straggler_start(self):
        plan = FaultPlan(
            crashes=[ReplicaCrash(time=5.0, replica=0)],
            stragglers=[Straggler(start=5.0, duration=1.0, replica=1)],
        )
        injector = FaultInjector(plan)
        assert injector.next_event_time() == 5.0
        kinds = [action.kind for action in injector.pop_due(5.0)]
        assert kinds == ["crash", "straggler-start"]

    def test_slowdown_cost_model_scales_both_paths(self, platform_7b):
        inner = CostModel(platform_7b)
        slow = SlowdownCostModel(inner, 2.0)
        work = StepWork(prefill_tokens=0, decode_requests=8, decode_context_tokens=512)
        assert slow.step_seconds(work) == pytest.approx(2.0 * inner.step_seconds(work))
        fast = slow.decode_step_durations(8, 512.0, 4)
        reference = inner.decode_step_durations(8, 512.0, 4)
        assert list(fast) == pytest.approx([2.0 * d for d in reference])


class TestHealthRouting:
    def _view(self, replica_id, health):
        return ReplicaView(
            replica_id=replica_id, token_capacity=1024, used_tokens=0, health=health
        )

    def test_candidates_prefer_healthy_over_degraded(self):
        views = [self._view(0, HEALTH_DEGRADED), self._view(1, HEALTH_HEALTHY)]
        chosen = Router().candidates(views)
        assert [v.replica_id for v in chosen] == [1]

    def test_degraded_still_routable_when_nothing_healthy(self):
        views = [self._view(0, HEALTH_DEGRADED), self._view(1, HEALTH_DEGRADED)]
        chosen = Router().candidates(views)
        assert [v.replica_id for v in chosen] == [0, 1]

    def test_view_rejects_unknown_health(self):
        with pytest.raises(ValueError):
            self._view(0, "zombie")


class TestCrashRecovery:
    def test_crash_aborts_redispatches_and_replaces(self, platform_7b):
        plan = FaultPlan(crashes=[ReplicaCrash(time=0.2, replica=0)], seed=5)
        result = make_cluster(platform_7b, plan).run_open_loop(spread_workload())
        assert result.completed
        # Crashed work re-routes and everything still finishes.
        assert len(result.finished_requests) == 24
        assert_conservation(result, 24)
        assert len(result.failed) >= 1
        assert result.retries >= len(result.failed)
        # The dead replica was replaced: four lifetimes, one retired.
        assert len(result.lifetimes) == 4
        assert result.fault_events[0].kind == "crash"

    def test_crash_without_recovery_rejects_typed(self, platform_7b):
        plan = FaultPlan(
            crashes=[ReplicaCrash(time=0.2, replica=0)],
            seed=5,
            retry_policy=None,
            replace_crashed=False,
        )
        result = make_cluster(platform_7b, plan).run_open_loop(spread_workload())
        assert len(result.failed) >= 1
        assert result.reject_reasons.get(REASON_REPLICA_CRASH) == len(result.failed)
        assert_conservation(result, 24)
        assert result.retries == 0

    def test_crash_is_deterministic(self, platform_7b):
        plan = FaultPlan(crashes=[ReplicaCrash(time=0.2, replica=0)], seed=5)
        first = make_cluster(platform_7b, plan).run_open_loop(spread_workload())
        second = make_cluster(platform_7b, plan).run_open_loop(spread_workload())
        assert cluster_fingerprint(first) == cluster_fingerprint(second)

    def test_all_replicas_dead_rejects_rest_no_replicas(self, platform_7b):
        plan = FaultPlan(
            crashes=[ReplicaCrash(time=0.2, replica=i) for i in range(2)],
            seed=5,
            retry_policy=None,
            replace_crashed=False,
        )
        result = make_cluster(platform_7b, plan, num_replicas=2).run_open_loop(
            spread_workload(num_requests=30, spacing=0.05)
        )
        # The run terminates (no infinite retry loop against a dead fleet)
        # and every late arrival lands in a typed reject bucket.
        assert_conservation(result, 30)
        assert result.reject_reasons.get(REASON_NO_REPLICAS, 0) >= 1
        assert len(result.finished_requests) < 30

    def test_trace_carries_fail_and_retry_events(self, platform_7b):
        plan = FaultPlan(crashes=[ReplicaCrash(time=0.2, replica=0)], seed=5)
        ring = RingTracer()
        result = make_cluster(platform_7b, plan, tracer=ring).run_open_loop(spread_workload())
        names = [event.name for event in ring.events]
        assert obs.REPLICA_FAIL in names
        assert names.count(obs.REQUEST_RETRY) == result.retries
        fail = next(e for e in ring.events if e.name == obs.REPLICA_FAIL)
        assert fail.attrs["cause"] == "crash"
        assert fail.replica == 0


class TestPreemption:
    def test_preemption_drains_and_migrates_queued_work(self, platform_7b):
        # One tiny replica and a same-instant burst guarantee queued work at
        # the preemption point; the second replica launches as replacement
        # capacity for migrated requests via the deferral path.
        plan = FaultPlan(
            preemptions=[Preemption(time=0.1, replica=0, notice=2.0)], seed=7
        )
        specs = [
            RequestSpec(
                request_id=f"p-{i}",
                input_length=256,
                output_length=16,
                max_new_tokens=16,
                arrival_time=0.0,
            )
            for i in range(12)
        ]
        result = make_cluster(
            platform_7b, plan, num_replicas=2, capacity=1024
        ).run_open_loop(Workload(name="preempt-suite", requests=specs))
        assert result.migrations >= 1
        assert_conservation(result, 12)
        assert len(result.finished_requests) == 12
        kinds = [event.kind for event in result.fault_events]
        assert "preemption" in kinds
        # The drained replica retired (gracefully or at its deadline).
        assert any(life.retired_at is not None for life in result.lifetimes)

    def test_preemption_deadline_kills_undrained_work(self, platform_7b):
        # A notice too short to drain forces the deadline crash.
        plan = FaultPlan(
            preemptions=[Preemption(time=0.05, replica=0, notice=0.01)],
            seed=7,
            migrate_on_drain=False,
        )
        result = make_cluster(platform_7b, plan, num_replicas=2).run_open_loop(
            spread_workload(num_requests=16, output=32, spacing=0.0)
        )
        kinds = [event.kind for event in result.fault_events]
        assert "preemption" in kinds
        assert "preemption-deadline" in kinds
        assert_conservation(result, 16)


class TestStragglers:
    def test_straggler_slows_then_recovers(self, platform_7b):
        # Arrivals span well past the window's end so the straggler-end
        # fault action fires while the run is still alive.
        workload = spread_workload(num_requests=40, spacing=0.05)
        plan = FaultPlan(
            stragglers=[Straggler(start=0.1, duration=1.0, replica=0, slowdown=4.0)]
        )
        cluster = make_cluster(platform_7b, plan, num_replicas=1)
        result = cluster.run_open_loop(workload)
        kinds = [event.kind for event in result.fault_events]
        assert kinds == ["straggler-start", "straggler-end"]
        # Model restored after the window.
        assert not isinstance(cluster.replicas[0].engine.cost_model, SlowdownCostModel)
        assert cluster.replicas[0].health == HEALTH_HEALTHY
        # The slowdown costs real simulated time against a fault-free run:
        # per-token step cost is scaled while the window is open, so mean
        # time-per-output-token must rise (end-to-end duration is arrival-
        # dominated here and would be an unreliable signal).
        baseline = make_cluster(platform_7b, None, num_replicas=1).run_open_loop(workload)
        assert result.latency_summary().mean_tpot > baseline.latency_summary().mean_tpot

    def test_straggler_run_is_deterministic(self, platform_7b):
        plan = FaultPlan(
            stragglers=[Straggler(start=0.1, duration=1.0, replica=0, slowdown=4.0)]
        )
        first = make_cluster(platform_7b, plan).run_open_loop(spread_workload())
        second = make_cluster(platform_7b, plan).run_open_loop(spread_workload())
        assert cluster_fingerprint(first) == cluster_fingerprint(second)


class TestRoutingErrors:
    def test_transient_errors_retry_and_finish(self, platform_7b):
        plan = FaultPlan(
            routing_errors=[RoutingErrorWindow(start=0.0, duration=0.5, error_rate=0.5)],
            seed=13,
        )
        result = make_cluster(platform_7b, plan).run_open_loop(spread_workload())
        assert result.retries >= 1
        assert len(result.finished_requests) == 24
        assert_conservation(result, 24)

    def test_total_errors_exhaust_retries_typed(self, platform_7b):
        plan = FaultPlan(
            routing_errors=[RoutingErrorWindow(start=0.0, duration=1e9, error_rate=1.0)],
            seed=13,
            retry_policy=RetryPolicy(base_delay=0.01, max_attempts=2),
        )
        result = make_cluster(platform_7b, plan).run_open_loop(spread_workload(num_requests=6))
        assert len(result.finished_requests) == 0
        assert result.reject_reasons.get(REASON_RETRIES_EXHAUSTED) == 6
        assert_conservation(result, 6)


class TestEndOfRunFlush:
    def test_deferred_requests_reject_typed_on_abnormal_end(self, platform_7b):
        # A crash on replica 0 parks its requests for a retry far in the
        # future while replica 1 keeps stepping through its own work; a
        # max_steps limit then kills the run before the retries fire.  The
        # parked requests must surface in reject_reasons as unrouted-at-end,
        # not silently vanish.
        plan = FaultPlan(
            crashes=[ReplicaCrash(time=0.2, replica=0)],
            seed=5,
            retry_policy=RetryPolicy(base_delay=500.0, max_delay=500.0),
            replace_crashed=False,
        )
        result = make_cluster(
            platform_7b,
            plan,
            num_replicas=2,
            limits=SimulationLimits(max_steps=60),
        ).run_open_loop(spread_workload(num_requests=8, output=256, spacing=0.0))
        assert not result.completed
        assert result.reject_reasons.get(REASON_UNROUTED, 0) >= 1
        assert_conservation(result, 8)


class TestNeutrality:
    def test_no_plan_leaves_zero_defaults_and_no_snapshot_block(self, platform_7b):
        result = make_cluster(platform_7b, None).run_open_loop(spread_workload())
        assert result.failed == []
        assert result.retries == 0
        assert result.migrations == 0
        assert result.lost_tokens == 0
        assert result.fault_events == []
        assert result.fault_plan is None
        snapshot = cluster_snapshot(result)
        assert "faults" not in snapshot
        assert "fault" not in result.describe()

    def test_no_plan_emits_no_fault_trace_events(self, platform_7b):
        ring = RingTracer()
        make_cluster(platform_7b, None, tracer=ring).run_open_loop(spread_workload())
        names = {event.name for event in ring.events}
        assert not names & {
            obs.REPLICA_FAIL,
            obs.REPLICA_RECOVER,
            obs.REQUEST_RETRY,
            obs.REQUEST_MIGRATE,
        }

    def test_fast_path_matches_reference_under_faults(self, platform_7b):
        plan = FaultPlan(
            crashes=[ReplicaCrash(time=0.3, replica=1)],
            stragglers=[Straggler(start=0.1, duration=0.5, replica=0, slowdown=3.0)],
            seed=11,
        )
        fast = make_cluster(platform_7b, plan, fast_path=True).run_open_loop(spread_workload())
        reference = make_cluster(platform_7b, plan, fast_path=False).run_open_loop(
            spread_workload()
        )
        assert_rng_stream_identity(fast, reference)


class TestAvailabilityMetrics:
    def test_summary_counts_faults_and_recovery(self, platform_7b):
        from repro.metrics import summarize_availability
        from repro.serving.sla import SLASpec

        plan = FaultPlan(
            crashes=[ReplicaCrash(time=0.2, replica=0)],
            stragglers=[Straggler(start=0.3, duration=0.5, replica=1, slowdown=2.0)],
            seed=5,
            replacement_warmup=1.0,
        )
        result = make_cluster(platform_7b, plan).run_open_loop(spread_workload())
        summary = summarize_availability(result, SLASpec(ttft_limit=60.0, mtpot_limit=60.0))
        assert summary.crashes == 1
        assert summary.stragglers == 1
        assert summary.failed_requests == len(result.failed)
        assert summary.retries == result.retries
        assert summary.delivery_rate == 1.0
        assert summary.mean_time_to_recovery == pytest.approx(1.0)
        assert "goodput" in summary.describe()

    def test_result_convenience_method_matches_function(self, platform_7b):
        from repro.metrics import summarize_availability
        from repro.serving.sla import SLASpec

        sla = SLASpec(ttft_limit=60.0, mtpot_limit=60.0)
        result = make_cluster(platform_7b, None).run_open_loop(spread_workload())
        assert result.availability_summary(sla) == summarize_availability(result, sla)

"""Unit tests for the cluster request routers."""

from __future__ import annotations

import pytest

from repro.engine.request import Request
from repro.serving.routing import (
    REASON_SATURATED,
    LeastKVLoadRouter,
    LeastOutstandingRouter,
    MemoryAwareRouter,
    ReplicaSnapshot,
    ReplicaView,
    RoundRobinRouter,
    Router,
    RoutingAction,
    RoutingDecision,
    available_routers,
    create_router,
    router_overview,
    shed_reason,
)
from tests.conftest import make_spec


def snap(
    replica_id: int,
    capacity: int = 1000,
    used: int = 0,
    running: tuple[tuple[int, int], ...] = (),
    waiting: tuple[int, ...] = (),
) -> ReplicaSnapshot:
    """Snapshot builder; ``running`` is (current_tokens, generated) pairs."""
    return ReplicaSnapshot(
        replica_id=replica_id,
        token_capacity=capacity,
        used_tokens=used,
        running_current_tokens=tuple(c for c, _ in running),
        running_generated_tokens=tuple(g for _, g in running),
        waiting_prompt_tokens=waiting,
    )


SPEC = make_spec()


class TestReplicaSnapshot:
    def test_derived_counts(self):
        snapshot = snap(0, capacity=100, used=40, running=((30, 10), (10, 2)), waiting=(20, 5))
        assert snapshot.num_running == 2
        assert snapshot.num_waiting == 2
        assert snapshot.outstanding == 4
        assert snapshot.free_tokens == 60
        assert snapshot.queued_demand_tokens == 25
        assert snapshot.load_fraction == pytest.approx(0.65)
        assert not snapshot.saturated

    def test_saturation_counts_queued_demand(self):
        assert snap(0, capacity=100, used=60, waiting=(40,)).saturated
        assert snap(0, capacity=100, used=100).saturated
        assert not snap(0, capacity=100, used=60, waiting=(39,)).saturated

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaSnapshot(replica_id=0, token_capacity=0, used_tokens=0)
        with pytest.raises(ValueError):
            ReplicaSnapshot(replica_id=0, token_capacity=10, used_tokens=-1)
        with pytest.raises(ValueError):
            ReplicaSnapshot(
                replica_id=0,
                token_capacity=10,
                used_tokens=0,
                running_current_tokens=(1,),
                running_generated_tokens=(),
            )


class TestRoundRobin:
    def test_cycles_in_index_order(self):
        router = RoundRobinRouter()
        snapshots = [snap(i) for i in range(4)]
        picks = [router.select_replica(SPEC, snapshots) for _ in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_saturated_replica(self):
        router = RoundRobinRouter()
        snapshots = [snap(0), snap(1, capacity=10, used=10), snap(2), snap(3)]
        picks = [router.select_replica(SPEC, snapshots) for _ in range(6)]
        assert picks == [0, 2, 3, 0, 2, 3]

    def test_all_saturated_falls_back_to_cycle(self):
        router = RoundRobinRouter()
        snapshots = [snap(i, capacity=10, used=10) for i in range(3)]
        picks = [router.select_replica(SPEC, snapshots) for _ in range(4)]
        assert picks == [0, 1, 2, 0]

    def test_reset_on_run_start(self):
        router = RoundRobinRouter()
        snapshots = [snap(i) for i in range(3)]
        assert router.select_replica(SPEC, snapshots) == 0
        router.on_run_start()
        assert router.select_replica(SPEC, snapshots) == 0

    def test_cycles_over_non_contiguous_ids(self):
        # Elastic fleets leave gaps in the id space (retired ids are never
        # reused); the rotation must treat ids as opaque keys.
        router = RoundRobinRouter()
        snapshots = [snap(0), snap(2), snap(5)]
        picks = [router.select_replica(SPEC, snapshots) for _ in range(5)]
        assert picks == [0, 2, 5, 0, 2]

    def test_survives_replica_set_churn(self):
        # The replica last served may vanish between calls (drained or
        # retired); the cursor then wraps within whatever set remains.
        router = RoundRobinRouter()
        assert router.select_replica(SPEC, [snap(0), snap(1), snap(2)]) == 0
        assert router.select_replica(SPEC, [snap(0), snap(1), snap(2)]) == 1
        # Replica 1 retires; a new replica 3 joins.
        assert router.select_replica(SPEC, [snap(0), snap(2), snap(3)]) == 2
        assert router.select_replica(SPEC, [snap(0), snap(2), snap(3)]) == 3
        assert router.select_replica(SPEC, [snap(0), snap(2), snap(3)]) == 0


class TestLeastOutstanding:
    def test_picks_fewest_in_flight(self):
        router = LeastOutstandingRouter()
        snapshots = [
            snap(0, running=((10, 1), (10, 1))),
            snap(1, running=((10, 1),), waiting=(5, 5)),
            snap(2, running=((10, 1),)),
        ]
        assert router.select_replica(SPEC, snapshots) == 2

    def test_tie_breaks_to_lowest_id(self):
        router = LeastOutstandingRouter()
        snapshots = [snap(2), snap(0), snap(1)]
        assert router.select_replica(SPEC, snapshots) == 0

    def test_excludes_saturated(self):
        router = LeastOutstandingRouter()
        snapshots = [snap(0, capacity=10, used=10), snap(1, running=((10, 1),))]
        assert router.select_replica(SPEC, snapshots) == 1


class TestLeastKVLoad:
    def test_picks_lowest_load_fraction(self):
        router = LeastKVLoadRouter()
        snapshots = [snap(0, used=500), snap(1, used=200), snap(2, used=300)]
        assert router.select_replica(SPEC, snapshots) == 1

    def test_counts_queued_demand(self):
        router = LeastKVLoadRouter()
        # Replica 1 looks emptier by resident tokens but has a deep queue.
        snapshots = [snap(0, used=300), snap(1, used=100, waiting=(300,))]
        assert router.select_replica(SPEC, snapshots) == 0

    def test_tie_breaks_to_lowest_id(self):
        router = LeastKVLoadRouter()
        snapshots = [snap(1, used=100), snap(0, used=100)]
        assert router.select_replica(SPEC, snapshots) == 0

    def test_excludes_saturated(self):
        router = LeastKVLoadRouter()
        snapshots = [snap(0, capacity=100, used=100), snap(1, used=900)]
        assert router.select_replica(SPEC, snapshots) == 1


class TestMemoryAware:
    def test_prefers_largest_predicted_headroom(self):
        router = MemoryAwareRouter(default_length=100)
        # Same resident token count, but replica 0's requests are young (will
        # generate ~100 more each) while replica 1's are near-complete.
        snapshots = [
            snap(0, used=400, running=((200, 2), (200, 2))),
            snap(1, used=400, running=((200, 99), (200, 99))),
        ]
        assert router.select_replica(SPEC, snapshots) == 1

    def test_counts_waiting_queue_demand(self):
        router = MemoryAwareRouter(default_length=100)
        snapshots = [snap(0, waiting=(50, 50, 50)), snap(1, waiting=(50,))]
        assert router.select_replica(SPEC, snapshots) == 1

    def test_empty_replica_has_full_headroom(self):
        router = MemoryAwareRouter()
        snapshots = [snap(0, used=10, running=((10, 1),)), snap(1)]
        assert router.predicted_headroom_tokens(snapshots[1]) == snapshots[1].token_capacity
        # PR-1 name still answers (legacy alias).
        assert router.headroom_tokens(snapshots[1]) == snapshots[1].token_capacity
        assert router.select_replica(SPEC, snapshots) == 1

    def test_learns_from_finished_requests(self):
        router = MemoryAwareRouter(default_length=1000)
        snapshot = snap(0, used=100, running=((100, 10),))
        pessimistic = router.predicted_peak_tokens(snapshot)
        # Observing short completions shrinks the predicted remaining length.
        for _ in range(50):
            request = Request(spec=make_spec(output_length=16), arrival_time=0.0)
            request.generated_tokens = 16
            router.on_request_finished(request, time=1.0)
        optimistic = router.predicted_peak_tokens(snapshot)
        assert optimistic < pessimistic

    def test_clamps_prediction_to_request_caps(self):
        router = MemoryAwareRouter(default_length=2048)
        base = dict(
            replica_id=0,
            token_capacity=1000,
            used_tokens=200,
            running_current_tokens=(100, 100),
            running_generated_tokens=(4, 4),
        )
        uncapped = ReplicaSnapshot(**base)
        capped = ReplicaSnapshot(**base, running_remaining_cap_tokens=(8, 8))
        # Cold-start default of 2048 predicted tokens cannot exceed what the
        # requests' max_new_tokens budgets physically allow.
        assert router.predicted_peak_tokens(capped) == 216  # 200 + 2*8
        assert router.predicted_peak_tokens(uncapped) > 1000

    def test_history_cleared_on_run_start(self):
        router = MemoryAwareRouter(default_length=1000)
        request = Request(spec=make_spec(output_length=16), arrival_time=0.0)
        request.generated_tokens = 16
        router.on_request_finished(request, time=1.0)
        assert len(router.history) == 1
        router.on_run_start()
        assert router.history.is_empty

    def test_tie_breaks_to_lowest_id(self):
        router = MemoryAwareRouter()
        snapshots = [snap(1), snap(0)]
        assert router.select_replica(SPEC, snapshots) == 0

    def test_excludes_saturated(self):
        router = MemoryAwareRouter()
        snapshots = [snap(0, capacity=100, used=100), snap(1, capacity=100, used=90)]
        assert router.select_replica(SPEC, snapshots) == 1


class TestRoutingDecision:
    def test_route_constructor(self):
        decision = RoutingDecision.route(3)
        assert decision.is_route and not decision.is_reject and not decision.is_defer
        assert decision.action is RoutingAction.ROUTE
        assert decision.replica_id == 3

    def test_reject_constructor(self):
        decision = RoutingDecision.reject("overload")
        assert decision.is_reject
        assert decision.reason == "overload"
        assert RoutingDecision.reject().reason == REASON_SATURATED

    def test_defer_constructor(self):
        decision = RoutingDecision.defer(until=4.5)
        assert decision.is_defer
        assert decision.retry_at == 4.5

    def test_validation(self):
        with pytest.raises(ValueError, match="must name a replica_id"):
            RoutingDecision(action=RoutingAction.ROUTE)
        with pytest.raises(ValueError, match="only route decisions"):
            RoutingDecision(action=RoutingAction.REJECT, replica_id=1)
        with pytest.raises(ValueError, match="must carry retry_at"):
            RoutingDecision(action=RoutingAction.DEFER)
        with pytest.raises(ValueError, match="only defer decisions"):
            RoutingDecision(action=RoutingAction.ROUTE, replica_id=0, retry_at=1.0)


class TestDecideAPI:
    @pytest.mark.parametrize("name", ["round-robin", "least-outstanding", "least-kv-load", "memory-aware"])
    def test_builtins_return_route_decisions(self, name):
        router = create_router(name)
        decision = router.decide(SPEC, [snap(0), snap(1)])
        assert isinstance(decision, RoutingDecision)
        assert decision.is_route
        assert decision.replica_id in (0, 1)

    @pytest.mark.parametrize("name", ["round-robin", "least-outstanding", "least-kv-load", "memory-aware"])
    def test_reject_when_saturated_knob(self, name):
        router = create_router(name, reject_when_saturated=True)
        saturated = [snap(i, capacity=10, used=10) for i in range(2)]
        decision = router.decide(SPEC, saturated)
        assert decision.is_reject
        assert decision.reason == REASON_SATURATED
        # One free replica and the request routes again.
        assert router.decide(SPEC, [snap(0, capacity=10, used=10), snap(1)]).is_route

    def test_shed_classes_reject_by_class(self):
        router = LeastKVLoadRouter(shed_classes={"batch"})
        saturated = [snap(0, capacity=10, used=10)]
        batch_spec = make_spec(request_id="b0").with_sla_class("batch")
        decision = router.decide(batch_spec, saturated)
        assert decision.is_reject
        assert decision.reason == shed_reason("batch")
        # Interactive traffic still queues on the saturated fleet.
        assert router.decide(SPEC, saturated).is_route

    def test_defer_when_saturated(self):
        router = LeastOutstandingRouter(defer_when_saturated=0.5)
        saturated = [snap(0, capacity=10, used=10)]
        decision = router.decide(SPEC, saturated, now=2.0)
        assert decision.is_defer
        assert decision.retry_at == pytest.approx(2.5)
        assert router.decide(SPEC, [snap(0)], now=2.0).is_route

    def test_rejection_beats_deferral(self):
        router = LeastOutstandingRouter(reject_when_saturated=True, defer_when_saturated=0.5)
        assert router.decide(SPEC, [snap(0, capacity=10, used=10)]).is_reject

    def test_round_robin_cursor_survives_rejection(self):
        router = RoundRobinRouter(reject_when_saturated=True)
        open_views = [snap(0), snap(1)]
        assert router.decide(SPEC, open_views).replica_id == 0
        # A rejected request must not advance the rotation.
        assert router.decide(SPEC, [snap(0, capacity=10, used=10), snap(1, capacity=10, used=10)]).is_reject
        assert router.decide(SPEC, open_views).replica_id == 1

    def test_describe_mentions_policy_knobs(self):
        assert LeastKVLoadRouter().describe() == "least-kv-load"
        described = LeastKVLoadRouter(
            reject_when_saturated=True, shed_classes={"batch"}, defer_when_saturated=1.0
        ).describe()
        assert "reject-saturated" in described
        assert "shed=batch" in described
        assert "defer=1s" in described
        assert MemoryAwareRouter().describe() == "memory-aware (window=1000)"


class LegacyPickFirstRouter(Router):
    """Old-style router implementing only select_replica() -> int."""

    name = "legacy-first"

    def select_replica(self, spec, snapshots):
        return min(s.replica_id for s in snapshots)


class TestLegacyAdapter:
    def test_int_return_adapted_to_route_decision(self):
        router = LegacyPickFirstRouter()
        with pytest.warns(DeprecationWarning, match="select_replica"):
            decision = router.decide(SPEC, [snap(1), snap(0)])
        assert decision.is_route
        assert decision.replica_id == 0

    def test_warns_exactly_once_per_instance(self):
        import warnings

        router = LegacyPickFirstRouter()
        with pytest.warns(DeprecationWarning):
            router.decide(SPEC, [snap(0)])
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            router.decide(SPEC, [snap(0)])
        assert not [w for w in captured if issubclass(w.category, DeprecationWarning)]

    def test_adapter_honours_reject_when_saturated(self):
        router = LegacyPickFirstRouter()
        router.reject_when_saturated = True
        with pytest.warns(DeprecationWarning):
            router.decide(SPEC, [snap(0)])
        decision = router.decide(SPEC, [snap(0, capacity=10, used=10)])
        assert decision.is_reject

    def test_router_without_either_method_fails_at_definition(self):
        with pytest.raises(TypeError, match="must implement decide"):

            class EmptyRouter(Router):
                name = "empty"

    def test_select_replica_unwraps_new_style_decisions(self):
        assert LeastOutstandingRouter().select_replica(SPEC, [snap(0), snap(1)]) == 0

    def test_select_replica_raises_on_non_route_decision(self):
        router = LeastOutstandingRouter(reject_when_saturated=True)
        with pytest.raises(RuntimeError, match="decide"):
            router.select_replica(SPEC, [snap(0, capacity=10, used=10)])


class TestReplicaViewNormalised:
    def test_replica_view_is_replica_snapshot(self):
        # The legacy name stays importable as an alias of the new type.
        assert ReplicaSnapshot is ReplicaView

    def test_headroom_properties_under_mixed_capacities(self):
        big = snap(0, capacity=8000, used=4000, waiting=(400,))
        small = snap(1, capacity=800, used=200, waiting=(100,))
        assert big.headroom_tokens == 3600
        assert small.headroom_tokens == 500
        assert big.headroom_fraction == pytest.approx(0.45)
        assert small.headroom_fraction == pytest.approx(0.625)
        # Absolute headroom favours the big replica; normalised the small one.
        assert big.headroom_tokens > small.headroom_tokens
        assert big.headroom_fraction < small.headroom_fraction
        assert big.load_fraction == pytest.approx(0.55)
        assert small.load_fraction == pytest.approx(0.375)

    def test_headroom_fraction_negative_when_oversubscribed(self):
        view = snap(0, capacity=100, used=80, waiting=(40,))
        assert view.headroom_tokens == -20
        assert view.headroom_fraction == pytest.approx(-0.2)

    def test_speed_factor_validated(self):
        with pytest.raises(ValueError, match="speed_factor"):
            ReplicaView(replica_id=0, token_capacity=10, used_tokens=0, speed_factor=0.0)

    def test_least_kv_load_compares_fractions_not_tokens(self):
        router = LeastKVLoadRouter()
        # The big replica holds more absolute tokens but is relatively emptier.
        views = [
            snap(0, capacity=8000, used=3000),   # 37.5% load
            snap(1, capacity=800, used=400),     # 50% load
        ]
        assert router.decide(SPEC, views).replica_id == 0

    def test_memory_aware_normalises_predicted_peak_by_capacity(self):
        router = MemoryAwareRouter(default_length=64)
        assert router.predicted_peak_fraction(snap(0, capacity=1000)) == 0.0
        loaded = snap(0, capacity=1000, used=200, running=((200, 1),))
        fraction = router.predicted_peak_fraction(loaded)
        assert fraction == pytest.approx(router.predicted_peak_tokens(loaded) / 1000)
        assert router.predicted_headroom_fraction(loaded) == pytest.approx(1.0 - fraction)

    def test_memory_aware_prefers_relative_headroom_on_mixed_fleet(self):
        router = MemoryAwareRouter(default_length=8)
        views = [
            # Big replica: large absolute headroom but relatively fuller.
            snap(0, capacity=8000, used=6400, running=((6400, 100),)),
            # Small replica: less absolute headroom, far more relative slack.
            snap(1, capacity=2000, used=200, running=((200, 100),)),
        ]
        assert router.predicted_headroom_tokens(views[0]) > router.predicted_headroom_tokens(views[1]) - 4000
        assert router.decide(SPEC, views).replica_id == 1

    def test_memory_aware_speed_weighting_breaks_fraction_ties(self):
        router = MemoryAwareRouter(default_length=8)

        def view(replica_id, speed):
            return ReplicaView(
                replica_id=replica_id,
                token_capacity=1000,
                used_tokens=100,
                running_current_tokens=(100,),
                running_generated_tokens=(50,),
                speed_factor=speed,
            )

        # Identical normalised headroom; the faster replica wins.
        assert router.decide(SPEC, [view(0, 0.5), view(1, 1.0)]).replica_id == 1
        # Equal speeds fall back to the lowest-id tie-break.
        assert router.decide(SPEC, [view(0, 1.0), view(1, 1.0)]).replica_id == 0

    def test_memory_aware_charges_placement_footprint(self):
        router = MemoryAwareRouter(default_length=8)
        big_spec = make_spec(request_id="big", input_length=600, max_new_tokens=700)
        views = [
            # Relatively fuller, but the only replica the request fits in.
            snap(0, capacity=8000, used=4000, running=((4000, 100),)),
            # Relatively emptier, but a 600-token prompt oversubscribes it.
            snap(1, capacity=700, used=100, running=((100, 100),)),
        ]
        assert router.decide(big_spec, views).replica_id == 0


class TestRegistry:
    def test_known_names(self):
        assert available_routers() == [
            "least-kv-load",
            "least-outstanding",
            "memory-aware",
            "round-robin",
            "session-affinity",
        ]

    @pytest.mark.parametrize(
        "name",
        ["round-robin", "least-outstanding", "least-kv-load", "memory-aware", "session-affinity"],
    )
    def test_create_by_name(self, name):
        assert create_router(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown router"):
            create_router("random")

    def test_kwargs_forwarded(self):
        router = create_router("memory-aware", window_size=10)
        assert router.history.window_size == 10

    def test_policy_kwargs_forwarded_to_every_router(self):
        for name in available_routers():
            router = create_router(name, reject_when_saturated=True, shed_classes=("batch",))
            assert router.reject_when_saturated
            assert router.shed_classes == frozenset({"batch"})

    def test_unknown_kwargs_rejected_with_accepted_list(self):
        with pytest.raises(TypeError, match="accepted") as excinfo:
            create_router("round-robin", window_size=10)
        assert "window_size" in str(excinfo.value)
        assert "reject_when_saturated" in str(excinfo.value)

    def test_overview_is_deterministic_and_documented(self):
        overview = router_overview()
        assert list(overview) == available_routers()
        assert all(text for text in overview.values())
        assert "round-robin" in overview

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError, match="zero replicas"):
            LeastOutstandingRouter().select_replica(SPEC, [])

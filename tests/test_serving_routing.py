"""Unit tests for the cluster request routers."""

from __future__ import annotations

import pytest

from repro.engine.request import Request
from repro.serving.routing import (
    LeastKVLoadRouter,
    LeastOutstandingRouter,
    MemoryAwareRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    available_routers,
    create_router,
)
from tests.conftest import make_spec


def snap(
    replica_id: int,
    capacity: int = 1000,
    used: int = 0,
    running: tuple[tuple[int, int], ...] = (),
    waiting: tuple[int, ...] = (),
) -> ReplicaSnapshot:
    """Snapshot builder; ``running`` is (current_tokens, generated) pairs."""
    return ReplicaSnapshot(
        replica_id=replica_id,
        token_capacity=capacity,
        used_tokens=used,
        running_current_tokens=tuple(c for c, _ in running),
        running_generated_tokens=tuple(g for _, g in running),
        waiting_prompt_tokens=waiting,
    )


SPEC = make_spec()


class TestReplicaSnapshot:
    def test_derived_counts(self):
        snapshot = snap(0, capacity=100, used=40, running=((30, 10), (10, 2)), waiting=(20, 5))
        assert snapshot.num_running == 2
        assert snapshot.num_waiting == 2
        assert snapshot.outstanding == 4
        assert snapshot.free_tokens == 60
        assert snapshot.queued_demand_tokens == 25
        assert snapshot.load_fraction == pytest.approx(0.65)
        assert not snapshot.saturated

    def test_saturation_counts_queued_demand(self):
        assert snap(0, capacity=100, used=60, waiting=(40,)).saturated
        assert snap(0, capacity=100, used=100).saturated
        assert not snap(0, capacity=100, used=60, waiting=(39,)).saturated

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaSnapshot(replica_id=0, token_capacity=0, used_tokens=0)
        with pytest.raises(ValueError):
            ReplicaSnapshot(replica_id=0, token_capacity=10, used_tokens=-1)
        with pytest.raises(ValueError):
            ReplicaSnapshot(
                replica_id=0,
                token_capacity=10,
                used_tokens=0,
                running_current_tokens=(1,),
                running_generated_tokens=(),
            )


class TestRoundRobin:
    def test_cycles_in_index_order(self):
        router = RoundRobinRouter()
        snapshots = [snap(i) for i in range(4)]
        picks = [router.select_replica(SPEC, snapshots) for _ in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_saturated_replica(self):
        router = RoundRobinRouter()
        snapshots = [snap(0), snap(1, capacity=10, used=10), snap(2), snap(3)]
        picks = [router.select_replica(SPEC, snapshots) for _ in range(6)]
        assert picks == [0, 2, 3, 0, 2, 3]

    def test_all_saturated_falls_back_to_cycle(self):
        router = RoundRobinRouter()
        snapshots = [snap(i, capacity=10, used=10) for i in range(3)]
        picks = [router.select_replica(SPEC, snapshots) for _ in range(4)]
        assert picks == [0, 1, 2, 0]

    def test_reset_on_run_start(self):
        router = RoundRobinRouter()
        snapshots = [snap(i) for i in range(3)]
        assert router.select_replica(SPEC, snapshots) == 0
        router.on_run_start()
        assert router.select_replica(SPEC, snapshots) == 0

    def test_cycles_over_non_contiguous_ids(self):
        # Elastic fleets leave gaps in the id space (retired ids are never
        # reused); the rotation must treat ids as opaque keys.
        router = RoundRobinRouter()
        snapshots = [snap(0), snap(2), snap(5)]
        picks = [router.select_replica(SPEC, snapshots) for _ in range(5)]
        assert picks == [0, 2, 5, 0, 2]

    def test_survives_replica_set_churn(self):
        # The replica last served may vanish between calls (drained or
        # retired); the cursor then wraps within whatever set remains.
        router = RoundRobinRouter()
        assert router.select_replica(SPEC, [snap(0), snap(1), snap(2)]) == 0
        assert router.select_replica(SPEC, [snap(0), snap(1), snap(2)]) == 1
        # Replica 1 retires; a new replica 3 joins.
        assert router.select_replica(SPEC, [snap(0), snap(2), snap(3)]) == 2
        assert router.select_replica(SPEC, [snap(0), snap(2), snap(3)]) == 3
        assert router.select_replica(SPEC, [snap(0), snap(2), snap(3)]) == 0


class TestLeastOutstanding:
    def test_picks_fewest_in_flight(self):
        router = LeastOutstandingRouter()
        snapshots = [
            snap(0, running=((10, 1), (10, 1))),
            snap(1, running=((10, 1),), waiting=(5, 5)),
            snap(2, running=((10, 1),)),
        ]
        assert router.select_replica(SPEC, snapshots) == 2

    def test_tie_breaks_to_lowest_id(self):
        router = LeastOutstandingRouter()
        snapshots = [snap(2), snap(0), snap(1)]
        assert router.select_replica(SPEC, snapshots) == 0

    def test_excludes_saturated(self):
        router = LeastOutstandingRouter()
        snapshots = [snap(0, capacity=10, used=10), snap(1, running=((10, 1),))]
        assert router.select_replica(SPEC, snapshots) == 1


class TestLeastKVLoad:
    def test_picks_lowest_load_fraction(self):
        router = LeastKVLoadRouter()
        snapshots = [snap(0, used=500), snap(1, used=200), snap(2, used=300)]
        assert router.select_replica(SPEC, snapshots) == 1

    def test_counts_queued_demand(self):
        router = LeastKVLoadRouter()
        # Replica 1 looks emptier by resident tokens but has a deep queue.
        snapshots = [snap(0, used=300), snap(1, used=100, waiting=(300,))]
        assert router.select_replica(SPEC, snapshots) == 0

    def test_tie_breaks_to_lowest_id(self):
        router = LeastKVLoadRouter()
        snapshots = [snap(1, used=100), snap(0, used=100)]
        assert router.select_replica(SPEC, snapshots) == 0

    def test_excludes_saturated(self):
        router = LeastKVLoadRouter()
        snapshots = [snap(0, capacity=100, used=100), snap(1, used=900)]
        assert router.select_replica(SPEC, snapshots) == 1


class TestMemoryAware:
    def test_prefers_largest_predicted_headroom(self):
        router = MemoryAwareRouter(default_length=100)
        # Same resident token count, but replica 0's requests are young (will
        # generate ~100 more each) while replica 1's are near-complete.
        snapshots = [
            snap(0, used=400, running=((200, 2), (200, 2))),
            snap(1, used=400, running=((200, 99), (200, 99))),
        ]
        assert router.select_replica(SPEC, snapshots) == 1

    def test_counts_waiting_queue_demand(self):
        router = MemoryAwareRouter(default_length=100)
        snapshots = [snap(0, waiting=(50, 50, 50)), snap(1, waiting=(50,))]
        assert router.select_replica(SPEC, snapshots) == 1

    def test_empty_replica_has_full_headroom(self):
        router = MemoryAwareRouter()
        snapshots = [snap(0, used=10, running=((10, 1),)), snap(1)]
        assert router.headroom_tokens(snapshots[1]) == snapshots[1].token_capacity
        assert router.select_replica(SPEC, snapshots) == 1

    def test_learns_from_finished_requests(self):
        router = MemoryAwareRouter(default_length=1000)
        snapshot = snap(0, used=100, running=((100, 10),))
        pessimistic = router.predicted_peak_tokens(snapshot)
        # Observing short completions shrinks the predicted remaining length.
        for _ in range(50):
            request = Request(spec=make_spec(output_length=16), arrival_time=0.0)
            request.generated_tokens = 16
            router.on_request_finished(request, time=1.0)
        optimistic = router.predicted_peak_tokens(snapshot)
        assert optimistic < pessimistic

    def test_clamps_prediction_to_request_caps(self):
        router = MemoryAwareRouter(default_length=2048)
        base = dict(
            replica_id=0,
            token_capacity=1000,
            used_tokens=200,
            running_current_tokens=(100, 100),
            running_generated_tokens=(4, 4),
        )
        uncapped = ReplicaSnapshot(**base)
        capped = ReplicaSnapshot(**base, running_remaining_cap_tokens=(8, 8))
        # Cold-start default of 2048 predicted tokens cannot exceed what the
        # requests' max_new_tokens budgets physically allow.
        assert router.predicted_peak_tokens(capped) == 216  # 200 + 2*8
        assert router.predicted_peak_tokens(uncapped) > 1000

    def test_history_cleared_on_run_start(self):
        router = MemoryAwareRouter(default_length=1000)
        request = Request(spec=make_spec(output_length=16), arrival_time=0.0)
        request.generated_tokens = 16
        router.on_request_finished(request, time=1.0)
        assert len(router.history) == 1
        router.on_run_start()
        assert router.history.is_empty

    def test_tie_breaks_to_lowest_id(self):
        router = MemoryAwareRouter()
        snapshots = [snap(1), snap(0)]
        assert router.select_replica(SPEC, snapshots) == 0

    def test_excludes_saturated(self):
        router = MemoryAwareRouter()
        snapshots = [snap(0, capacity=100, used=100), snap(1, capacity=100, used=90)]
        assert router.select_replica(SPEC, snapshots) == 1


class TestRegistry:
    def test_known_names(self):
        assert available_routers() == [
            "least-kv-load",
            "least-outstanding",
            "memory-aware",
            "round-robin",
        ]

    @pytest.mark.parametrize("name", ["round-robin", "least-outstanding", "least-kv-load", "memory-aware"])
    def test_create_by_name(self, name):
        assert create_router(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown router"):
            create_router("random")

    def test_kwargs_forwarded(self):
        router = create_router("memory-aware", window_size=10)
        assert router.history.window_size == 10

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError, match="zero replicas"):
            LeastOutstandingRouter().select_replica(SPEC, [])

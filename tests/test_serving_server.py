"""Integration tests for the serving simulator event loop."""

from __future__ import annotations

import pytest

from repro.schedulers.aggressive import AggressiveScheduler
from repro.schedulers.conservative import ConservativeScheduler
from repro.core.past_future import PastFutureScheduler
from repro.serving.server import ServingSimulator, SimulationLimits
from repro.serving.sla import SLASpec
from repro.workloads.spec import RequestSpec, Workload
from tests.conftest import make_workload


def simulator(platform_7b, scheduler, capacity=1024, **kwargs) -> ServingSimulator:
    return ServingSimulator(
        platform=platform_7b,
        scheduler=scheduler,
        token_capacity_override=capacity,
        **kwargs,
    )


class TestClosedLoopRuns:
    def test_all_requests_complete(self, platform_7b):
        sim = simulator(platform_7b, AggressiveScheduler())
        result = sim.run_closed_loop(make_workload(30, output_length=8), num_clients=6)
        assert result.completed
        assert len(result.finished_requests) == 30
        assert result.duration > 0
        assert result.num_clients == 6

    def test_tokens_accounted(self, platform_7b):
        workload = make_workload(20, output_length=10)
        sim = simulator(platform_7b, AggressiveScheduler())
        result = sim.run_closed_loop(workload, num_clients=4)
        assert result.total_output_tokens == 20 * 10

    def test_arrival_times_respect_closed_loop(self, platform_7b):
        sim = simulator(platform_7b, AggressiveScheduler())
        result = sim.run_closed_loop(make_workload(12, output_length=6), num_clients=3)
        arrivals = sorted(r.arrival_time for r in result.requests)
        # Exactly three requests arrive at time zero (one per client).
        assert sum(1 for a in arrivals if a == 0.0) == 3
        assert all(a >= 0.0 for a in arrivals)

    def test_more_clients_do_not_slow_down_small_workload(self, platform_7b):
        workload = make_workload(24, output_length=8)
        few = simulator(platform_7b, AggressiveScheduler(), capacity=8192).run_closed_loop(workload, 2)
        many = simulator(platform_7b, AggressiveScheduler(), capacity=8192).run_closed_loop(workload, 12)
        assert many.duration <= few.duration

    def test_past_future_scheduler_end_to_end(self, platform_7b, small_decode_heavy_workload):
        sim = simulator(platform_7b, PastFutureScheduler(seed=1), capacity=2048)
        result = sim.run_closed_loop(small_decode_heavy_workload, num_clients=8)
        assert result.completed
        assert len(result.finished_requests) == len(small_decode_heavy_workload)

    def test_memory_never_exceeds_capacity(self, platform_7b, small_decode_heavy_workload):
        sim = simulator(platform_7b, AggressiveScheduler(watermark=1.0), capacity=1024)
        result = sim.run_closed_loop(small_decode_heavy_workload, num_clients=12)
        assert result.memory_timeline is not None
        assert result.memory_timeline.peak_consumed_fraction <= 1.0


class TestOpenLoopRuns:
    def test_poisson_run_completes(self, platform_7b):
        sim = simulator(platform_7b, AggressiveScheduler(), capacity=4096)
        result = sim.run_open_loop(make_workload(20, output_length=6), request_rate=50.0, seed=3)
        assert result.completed
        assert len(result.finished_requests) == 20
        assert result.num_clients == 0

    def test_low_rate_is_mostly_idle_but_finishes(self, platform_7b):
        sim = simulator(platform_7b, AggressiveScheduler(), capacity=4096)
        result = sim.run_open_loop(make_workload(5, output_length=4), request_rate=2.0, seed=4)
        assert result.completed
        assert result.duration > 1.0


class TestSafetyLimits:
    def test_max_steps_terminates_run(self, platform_7b):
        sim = simulator(
            platform_7b,
            AggressiveScheduler(),
            capacity=2048,
            limits=SimulationLimits(max_steps=5),
        )
        result = sim.run_closed_loop(make_workload(50, output_length=50, max_new_tokens=64), num_clients=10)
        assert not result.completed

    def test_stall_guard_stops_unschedulable_workload(self, platform_7b):
        # A prompt larger than the whole KV pool can never be admitted.
        giant = Workload(
            name="giant",
            requests=[
                RequestSpec(request_id="g0", input_length=5000, output_length=4, max_new_tokens=8)
            ],
        )
        sim = simulator(platform_7b, ConservativeScheduler(), capacity=256)
        result = sim.run_closed_loop(giant, num_clients=1)
        assert not result.completed
        assert result.finished_requests == []


class TestRunResultMetrics:
    def test_goodput_equals_throughput_when_sla_met(self, platform_7b):
        sim = simulator(platform_7b, ConservativeScheduler(), capacity=8192)
        result = sim.run_closed_loop(make_workload(16, output_length=8), num_clients=4)
        sla = SLASpec(ttft_limit=1e6, mtpot_limit=1e6)
        assert result.goodput(sla) == pytest.approx(result.throughput())

    def test_goodput_zero_under_impossible_sla(self, platform_7b):
        sim = simulator(platform_7b, ConservativeScheduler(), capacity=8192)
        result = sim.run_closed_loop(make_workload(16, output_length=8), num_clients=4)
        sla = SLASpec(ttft_limit=1e-9, mtpot_limit=1e-9)
        assert result.goodput(sla) == 0.0

    def test_describe_mentions_counts(self, platform_7b):
        sim = simulator(platform_7b, AggressiveScheduler(), capacity=4096)
        result = sim.run_closed_loop(make_workload(8, output_length=4), num_clients=2)
        text = result.describe()
        assert "8 requests" in text
        assert "evictions" in text

    def test_latency_summary_counts_finished(self, platform_7b):
        sim = simulator(platform_7b, AggressiveScheduler(), capacity=4096)
        result = sim.run_closed_loop(make_workload(10, output_length=5), num_clients=5)
        summary = result.latency_summary()
        assert summary.count == 10
        assert summary.mean_ttft > 0
        assert summary.p99_mtpot >= summary.mean_tpot

"""Tests for SLA specifications and compliance checks."""

from __future__ import annotations

import pytest

from repro.engine.request import Request
from repro.serving.sla import (
    SLA_LARGE_MODEL,
    SLA_SMALL_MODEL,
    ClassLimits,
    SLASpec,
    sla_for_model,
    two_class_sla,
)
from tests.conftest import make_spec


def finished_request(arrival=0.0, token_times=(1.0, 1.5, 2.0)) -> Request:
    request = Request(
        spec=make_spec(output_length=len(token_times), max_new_tokens=len(token_times) + 1),
        arrival_time=arrival,
    )
    request.admit(arrival)
    request.note_prefill(request.prompt_tokens)
    for time in token_times:
        request.deliver_token(time)
    request.finish(token_times[-1])
    return request


class TestSLASpec:
    def test_rejects_non_positive_limits(self):
        with pytest.raises(ValueError):
            SLASpec(ttft_limit=0, mtpot_limit=1)
        with pytest.raises(ValueError):
            SLASpec(ttft_limit=1, mtpot_limit=0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            SLASpec(ttft_limit=1, mtpot_limit=1, percentile=0)

    def test_presets_match_paper(self):
        assert SLA_SMALL_MODEL.ttft_limit == 10.0
        assert SLA_SMALL_MODEL.mtpot_limit == 1.5
        assert SLA_LARGE_MODEL.ttft_limit == 15.0
        assert SLA_LARGE_MODEL.mtpot_limit == 5.0

    def test_sla_for_model(self):
        assert sla_for_model("Llama-2-7B-Chat") is SLA_SMALL_MODEL
        assert sla_for_model("Llama-2-13B-Chat") is SLA_SMALL_MODEL
        assert sla_for_model("Llama-2-70B-Chat") is SLA_LARGE_MODEL

    def test_describe(self):
        assert "TTFT 10s" in SLA_SMALL_MODEL.describe()


class TestCompliance:
    def test_compliant_request(self):
        sla = SLASpec(ttft_limit=2.0, mtpot_limit=1.0)
        assert sla.request_compliant(finished_request())

    def test_ttft_violation(self):
        sla = SLASpec(ttft_limit=0.5, mtpot_limit=1.0)
        assert not sla.request_compliant(finished_request())

    def test_mtpot_violation(self):
        sla = SLASpec(ttft_limit=10.0, mtpot_limit=0.3)
        assert not sla.request_compliant(finished_request())

    def test_unfinished_request_is_non_compliant(self):
        request = Request(spec=make_spec(), arrival_time=0.0)
        assert not SLA_SMALL_MODEL.request_compliant(request)

    def test_single_token_request_checks_only_ttft(self):
        request = finished_request(token_times=(1.0,))
        assert SLASpec(ttft_limit=2.0, mtpot_limit=0.001).request_compliant(request)
        assert not SLASpec(ttft_limit=0.5, mtpot_limit=0.001).request_compliant(request)

    def test_eviction_stall_breaks_mtpot(self):
        # A long inter-token gap (as produced by an eviction + recompute)
        # violates the MTPOT limit even though TTFT and the other gaps are fine.
        request = finished_request(token_times=(1.0, 1.2, 5.0, 5.2))
        sla = SLASpec(ttft_limit=10.0, mtpot_limit=1.5)
        assert not sla.request_compliant(request)


def finished_class_request(sla_class: str, arrival=0.0, token_times=(1.0, 1.5, 2.0)) -> Request:
    request = Request(
        spec=make_spec(
            output_length=len(token_times), max_new_tokens=len(token_times) + 1
        ).with_sla_class(sla_class),
        arrival_time=arrival,
    )
    request.admit(arrival)
    request.note_prefill(request.prompt_tokens)
    for time in token_times:
        request.deliver_token(time)
    request.finish(token_times[-1])
    return request


class TestClassLimits:
    def test_with_class_binds_overrides(self):
        sla = SLASpec(ttft_limit=2.0, mtpot_limit=0.5).with_class(
            "batch", ttft_limit=10.0, mtpot_limit=2.0
        )
        assert sla.limits_for("batch").ttft_limit == 10.0
        assert sla.limits_for("batch").mtpot_limit == 2.0
        # Unlisted classes fall back to the base bounds.
        assert sla.limits_for("interactive").ttft_limit == 2.0
        assert sla.limits_for("interactive").mtpot_limit == 0.5

    def test_with_class_is_non_destructive(self):
        base = SLASpec(ttft_limit=2.0, mtpot_limit=0.5)
        extended = base.with_class("batch", ttft_limit=10.0, mtpot_limit=2.0)
        assert not base.class_limits
        assert set(extended.class_limits) == {"batch"}

    def test_class_limits_validated(self):
        with pytest.raises(ValueError):
            ClassLimits(ttft_limit=0.0, mtpot_limit=1.0)
        with pytest.raises(ValueError):
            SLASpec(ttft_limit=1.0, mtpot_limit=1.0).with_class("x", -1.0, 1.0)

    def test_compliance_judged_per_class(self):
        # TTFT of the test request is 1.0s: inside batch's deadline, outside
        # interactive's.
        sla = SLASpec(ttft_limit=0.5, mtpot_limit=1.0).with_class(
            "batch", ttft_limit=5.0, mtpot_limit=1.0
        )
        assert sla.request_compliant(finished_class_request("batch"))
        assert not sla.request_compliant(finished_class_request("interactive"))

    def test_two_class_sla_factory(self):
        sla = two_class_sla(interactive=(2.5, 0.5), batch=(10.0, 1.5))
        assert sla.ttft_limit == 2.5  # base = the stricter contract
        assert sla.limits_for("interactive").ttft_limit == 2.5
        assert sla.limits_for("batch").ttft_limit == 10.0
        assert sla.limits_for("unknown-class").ttft_limit == 2.5

    def test_describe_lists_classes(self):
        sla = two_class_sla(interactive=(2.5, 0.5), batch=(10.0, 1.5))
        text = sla.describe()
        assert "batch" in text and "interactive" in text

    def test_spec_stays_hashable(self):
        # SLASpec was hashable before class limits existed; presets and
        # class-carrying specs must both keep working as dict keys.
        sla = two_class_sla(interactive=(2.5, 0.5), batch=(10.0, 1.5))
        assert {SLA_SMALL_MODEL: 1, sla: 2}[sla] == 2
        assert len({SLA_SMALL_MODEL, SLA_LARGE_MODEL}) == 2

"""Tests for the sliding-window overload throttle and its simulator wiring."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.schedulers import create_scheduler
from repro.serving import (
    ClusterSimulator,
    OverloadThrottle,
    REASON_THROTTLED,
    ServingSimulator,
)
from repro.workloads.arrivals import assign_poisson_arrivals
from repro.workloads.spec import Workload
from repro.workloads.tenants import assign_tenants, generate_tenant_population
from tests.conftest import TINY_CAPACITY, make_spec, make_workload


def tenant_spec(request_id: str, user_id: str | None = None, app_id: str | None = None):
    return replace(make_spec(request_id=request_id), user_id=user_id, app_id=app_id)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="user_rpm"):
            OverloadThrottle(user_rpm=0)
        with pytest.raises(ValueError, match="app_rpm"):
            OverloadThrottle(app_rpm=-1)
        with pytest.raises(ValueError, match="window_seconds"):
            OverloadThrottle(user_rpm=1, window_seconds=0.0)

    def test_describe(self):
        assert "user<=10" in OverloadThrottle(user_rpm=10).describe()
        assert "disabled" in OverloadThrottle().describe()
        assert "exempt" in OverloadThrottle(user_rpm=1, exempt=lambda s: True).describe()


class TestSlidingWindow:
    def test_limit_reached_within_window(self):
        throttle = OverloadThrottle(user_rpm=2)
        spec = tenant_spec("r", user_id="alice")
        assert throttle.check(spec, 0.0) is None
        assert throttle.check(spec, 1.0) is None
        assert throttle.check(spec, 2.0) == REASON_THROTTLED

    def test_window_boundary_is_half_open(self):
        # Entries at time t leave the window exactly at t + window_seconds:
        # (now - window, now] keeps strictly newer entries only.
        throttle = OverloadThrottle(user_rpm=1, window_seconds=60.0)
        spec = tenant_spec("r", user_id="alice")
        assert throttle.check(spec, 0.0) is None
        assert throttle.check(spec, 59.999) == REASON_THROTTLED
        assert throttle.check(spec, 60.0) is None

    def test_rejected_arrivals_are_not_recorded(self):
        # A throttled burst must not extend its own punishment: after the
        # first admit at t=0 falls out of the window, the tenant is clean
        # no matter how many rejects happened meanwhile.
        throttle = OverloadThrottle(user_rpm=1, window_seconds=10.0)
        spec = tenant_spec("r", user_id="alice")
        assert throttle.check(spec, 0.0) is None
        for t in (1.0, 3.0, 5.0, 9.0):
            assert throttle.check(spec, t) == REASON_THROTTLED
        assert throttle.check(spec, 10.5) is None

    def test_windows_are_per_user(self):
        throttle = OverloadThrottle(user_rpm=1)
        assert throttle.check(tenant_spec("a", user_id="alice"), 0.0) is None
        assert throttle.check(tenant_spec("b", user_id="bob"), 0.0) is None
        assert throttle.check(tenant_spec("a2", user_id="alice"), 1.0) == REASON_THROTTLED

    def test_app_limit_independent_of_user_limit(self):
        throttle = OverloadThrottle(app_rpm=2)
        specs = [
            tenant_spec(f"r{i}", user_id=f"user-{i}", app_id="chat") for i in range(3)
        ]
        assert throttle.check(specs[0], 0.0) is None
        assert throttle.check(specs[1], 0.0) is None
        assert throttle.check(specs[2], 0.0) == REASON_THROTTLED

    def test_user_reject_does_not_charge_app_window(self):
        throttle = OverloadThrottle(user_rpm=1, app_rpm=2)
        alice = tenant_spec("a", user_id="alice", app_id="chat")
        assert throttle.check(alice, 0.0) is None
        # alice is over her user limit; the reject must not consume chat's
        # remaining app slot...
        assert throttle.check(alice, 1.0) == REASON_THROTTLED
        # ...which bob can still use.
        assert throttle.check(tenant_spec("b", user_id="bob", app_id="chat"), 2.0) is None

    def test_tenantless_requests_pass_through(self):
        throttle = OverloadThrottle(user_rpm=1, app_rpm=1)
        for t in range(5):
            assert throttle.check(make_spec(request_id=f"r{t}"), float(t)) is None

    def test_exempt_bypasses_check_and_recording(self):
        throttle = OverloadThrottle(
            user_rpm=1, exempt=lambda spec: spec.request_id.startswith("vip")
        )
        vip = tenant_spec("vip-0", user_id="alice")
        plain = tenant_spec("r0", user_id="alice")
        for t in range(3):
            assert throttle.check(replace(vip, request_id=f"vip-{t}"), float(t)) is None
        # Exempt traffic did not eat alice's budget.
        assert throttle.check(plain, 5.0) is None
        assert throttle.check(tenant_spec("r1", user_id="alice"), 6.0) == REASON_THROTTLED
        # Exemption also waves through a tenant already at her limit.
        assert throttle.check(replace(vip, request_id="vip-9"), 7.0) is None

    def test_reset_forgets_window_state(self):
        throttle = OverloadThrottle(user_rpm=1)
        spec = tenant_spec("r", user_id="alice")
        assert throttle.check(spec, 0.0) is None
        assert throttle.check(spec, 1.0) == REASON_THROTTLED
        throttle.reset()
        assert throttle.check(spec, 1.0) is None


def throttled_workload(num_requests: int = 60, rate: float = 50.0) -> Workload:
    population = generate_tenant_population(
        4, num_apps=2, abusive_users=1, abusive_share=0.7
    )
    workload = assign_tenants(
        make_workload(num_requests=num_requests), population, seed=3
    )
    return assign_poisson_arrivals(workload, request_rate=rate, seed=5)


class TestServingSimulatorIntegration:
    def test_throttled_run_conserves_requests(self, platform_7b):
        simulator = ServingSimulator(
            platform_7b,
            create_scheduler("aggressive", watermark=0.9),
            token_capacity_override=TINY_CAPACITY,
            throttle=OverloadThrottle(user_rpm=15),
        )
        workload = throttled_workload()
        result = simulator.run_open_loop(workload)
        assert result.completed
        assert result.rejected
        assert len(result.requests) + len(result.rejected) == len(workload.requests)
        assert result.reject_reasons == {REASON_THROTTLED: len(result.rejected)}
        # Only the abusive user exceeds 15 requests inside the burst window.
        assert {r.spec.user_id for r in result.rejected} == {"user-0000"}

    def test_no_throttle_means_no_rejects(self, platform_7b):
        simulator = ServingSimulator(
            platform_7b,
            create_scheduler("aggressive", watermark=0.9),
            token_capacity_override=TINY_CAPACITY,
        )
        result = simulator.run_open_loop(throttled_workload())
        assert result.completed
        assert result.rejected == []
        assert result.reject_reasons == {}

    def test_closed_loop_releases_throttled_client_slots(self, platform_7b):
        # Closed-loop clients whose arrival is throttled must get their slot
        # back, or the run deadlocks waiting for requests that never finish.
        simulator = ServingSimulator(
            platform_7b,
            create_scheduler("aggressive", watermark=0.9),
            token_capacity_override=TINY_CAPACITY,
            throttle=OverloadThrottle(user_rpm=5),
        )
        population = generate_tenant_population(2, abusive_users=1, abusive_share=0.9)
        workload = assign_tenants(make_workload(num_requests=40), population, seed=7)
        result = simulator.run_closed_loop(workload, num_clients=4)
        assert result.completed
        assert result.rejected
        assert len(result.requests) + len(result.rejected) == 40

    def test_fairness_summary_includes_rejects(self, platform_7b):
        from repro.serving.sla import SLASpec

        simulator = ServingSimulator(
            platform_7b,
            create_scheduler("vtc", watermark=0.9),
            token_capacity_override=TINY_CAPACITY,
            throttle=OverloadThrottle(user_rpm=15),
        )
        result = simulator.run_open_loop(throttled_workload())
        summary = result.fairness_summary(SLASpec(ttft_limit=10.0, mtpot_limit=1.5))
        assert summary.per_tenant["user-0000"].rejected_requests == len(result.rejected)


class TestClusterSimulatorIntegration:
    def test_throttled_cluster_conserves_requests(self, platform_7b):
        workload = throttled_workload()
        simulator = ClusterSimulator(
            platform=platform_7b,
            num_replicas=2,
            router="round-robin",
            scheduler_name="aggressive",
            scheduler_kwargs={"watermark": 0.9},
            token_capacity_override=4096,
            throttle=OverloadThrottle(user_rpm=15),
        )
        result = simulator.run_open_loop(workload)
        assert result.completed
        assert result.rejected
        assert len(result.requests) + len(result.rejected) == len(workload.requests)
        assert result.reject_reasons[REASON_THROTTLED] == len(result.rejected)
        assert {r.spec.user_id for r in result.rejected} == {"user-0000"}

    def test_cluster_without_throttle_unchanged(self, platform_7b):
        workload = throttled_workload()
        simulator = ClusterSimulator(
            platform=platform_7b,
            num_replicas=2,
            router="round-robin",
            scheduler_name="aggressive",
            scheduler_kwargs={"watermark": 0.9},
            token_capacity_override=4096,
        )
        result = simulator.run_open_loop(workload)
        assert result.completed
        assert REASON_THROTTLED not in result.reject_reasons


class TestSnapshotKeys:
    def test_run_snapshot_omits_reject_keys_when_clean(self, platform_7b):
        # The perf fingerprints committed before the throttle existed must
        # stay byte-identical: the snapshot only grows keys on rejecting runs.
        from repro.analysis.perf import run_snapshot

        simulator = ServingSimulator(
            platform_7b,
            create_scheduler("aggressive", watermark=0.9),
            token_capacity_override=TINY_CAPACITY,
        )
        clean = run_snapshot(simulator.run_open_loop(throttled_workload()))
        assert "rejected" not in clean
        assert "reject_reasons" not in clean

    def test_run_snapshot_includes_reject_keys_when_throttled(self, platform_7b):
        from repro.analysis.perf import run_snapshot

        simulator = ServingSimulator(
            platform_7b,
            create_scheduler("aggressive", watermark=0.9),
            token_capacity_override=TINY_CAPACITY,
            throttle=OverloadThrottle(user_rpm=15),
        )
        snapshot = run_snapshot(simulator.run_open_loop(throttled_workload()))
        assert snapshot["rejected"]
        assert snapshot["reject_reasons"] == {REASON_THROTTLED: len(snapshot["rejected"])}

"""The session subsystem must be byte-invisible when no interactions run.

This PR threaded session identity, a per-replica prefix cache, and session
trace events through the workload model, the engine, and both simulators.
None of that may move a single float in session-free experiments:

* the committed ``BENCH_core.json`` fingerprints of the pre-existing
  scenarios must stay byte-identical (the full set is re-proved by CI's
  perf-smoke; the fleet scenarios whose code paths this PR touched most are
  re-run here);
* session-free snapshots must carry no ``sessions``/``prefix`` keys, so
  every committed digest is unchanged by the fields' existence;
* with ``prefix_cache_tokens`` unset (the default everywhere), the
  ``PrefixCache`` class must never even be instantiated, let alone
  consulted;
* session-free traced runs must emit no ``session.*`` / ``prefix.*`` events.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.perf import (
    BENCH_PATH,
    SCENARIOS,
    cluster_snapshot,
    run_snapshot,
)
from repro.memory import prefix_cache as prefix_cache_module
from repro.obs.tracer import RingTracer
from repro.schedulers.conservative import ConservativeScheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.server import ServingSimulator
from tests.conftest import TINY_CAPACITY, make_workload
from tests.helpers import assert_fingerprint_neutral


def run_server(platform, tracer=None):
    sim = ServingSimulator(
        platform=platform,
        scheduler=ConservativeScheduler(),
        token_capacity_override=TINY_CAPACITY,
        tracer=tracer,
    )
    return sim, sim.run_closed_loop(make_workload(num_requests=12), num_clients=4)


def run_cluster(platform, tracer=None):
    sim = ClusterSimulator(
        platform=platform,
        num_replicas=2,
        router="least-outstanding",
        scheduler_name="conservative",
        token_capacity_override=TINY_CAPACITY,
        tracer=tracer,
    )
    return sim, sim.run_closed_loop(make_workload(num_requests=12), num_clients=4)


class TestSnapshotsCarryNoSessionKeys:
    def test_server_snapshot_has_no_session_or_prefix_block(self, platform_7b):
        _, result = run_server(platform_7b)
        snapshot = run_snapshot(result)
        assert "sessions" not in snapshot
        assert "prefix" not in snapshot
        assert result.prefix_stats is None

    def test_cluster_snapshot_has_no_session_or_prefix_block(self, platform_7b):
        _, result = run_cluster(platform_7b)
        snapshot = cluster_snapshot(result)
        assert "sessions" not in snapshot
        assert result.prefix_stats is None
        for replica in snapshot["replicas"]:
            assert "sessions" not in replica
            assert "prefix" not in replica


class TestPrefixCacheNeverConsulted:
    @pytest.fixture
    def forbidden_cache(self, monkeypatch):
        """Any PrefixCache instantiation during the test is an error."""

        def explode(self, *args, **kwargs):
            raise AssertionError("PrefixCache constructed in a session-free run")

        monkeypatch.setattr(prefix_cache_module.PrefixCache, "__init__", explode)

    def test_server_without_budget_never_builds_a_cache(
        self, platform_7b, forbidden_cache
    ):
        sim, result = run_server(platform_7b)
        assert result.completed
        assert sim.engine.prefix_cache is None

    def test_cluster_without_budget_never_builds_a_cache(
        self, platform_7b, forbidden_cache
    ):
        sim, result = run_cluster(platform_7b)
        assert result.completed
        for replica in sim.replicas:
            assert replica.engine.prefix_cache is None


class TestNoSessionEventsWithoutSessions:
    def test_server_trace_is_free_of_session_and_prefix_events(self, platform_7b):
        ring = RingTracer()
        run_server(platform_7b, tracer=ring)
        names = {e.name for e in ring.events}
        assert not {n for n in names if n.startswith(("session.", "prefix."))}

    def test_cluster_trace_is_free_of_session_and_prefix_events(self, platform_7b):
        ring = RingTracer()
        run_cluster(platform_7b, tracer=ring)
        names = {e.name for e in ring.events}
        assert not {n for n in names if n.startswith(("session.", "prefix."))}


class TestCommittedFingerprints:
    """Spot-check the committed scenarios over the session-touched code paths.

    The full eight-scenario sweep runs in CI's perf-smoke; here the three
    fleet scenarios whose code this PR edited most (routing/finish hooks in
    the cluster loop, the throttle/reject session-abandon paths, the fault
    retry machinery) are re-run fast-path and compared byte-for-byte.
    """

    @pytest.fixture(scope="class")
    def committed(self) -> dict:
        if not BENCH_PATH.exists():
            pytest.skip("no committed BENCH_core.json in this checkout")
        return json.loads(BENCH_PATH.read_text())["scenarios"]

    @pytest.mark.parametrize(
        "name", ["fig10_cluster_routing", "fig13_fairness", "fig14_failure_recovery"]
    )
    def test_scenario_fingerprint_unmoved_by_session_subsystem(self, committed, name):
        scenario = next(s for s in SCENARIOS if s.name == name)
        _, digest, _ = scenario.run(True)
        assert_fingerprint_neutral(
            digest, committed[name]["fingerprint"], label="session subsystem"
        )

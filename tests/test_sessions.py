"""Unit tests for the multi-turn session subsystem.

Covers the pieces the fig15 benchmark composes: the :class:`Interaction`
workload model and its closed-loop generator, the ``session-affinity``
router's home/fallback/re-home policy, per-session metrics folding (including
the crash-retry case where an aborted turn's retry finishes under the same
request id), and the end-to-end ``run_sessions`` entry points on both
simulators — with the fast path staying bit-identical to the reference loop
while sessions and the prefix cache are live.
"""

from __future__ import annotations

import pytest

from repro.engine.request import Request
from repro.memory.prefix_cache import PrefixCacheStats
from repro.metrics.sessions import summarize_sessions
from repro.schedulers.conservative import ConservativeScheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.routing import (
    MemoryAwareRouter,
    ReplicaView,
    RoutingAction,
    SessionAffinityRouter,
    create_router,
)
from repro.serving.server import ServingSimulator
from repro.serving.sla import SLASpec
from repro.workloads.interactions import (
    Interaction,
    InteractionLoadGenerator,
    InteractionStage,
    generate_interactions,
    interactions_workload,
)
from tests.conftest import TINY_CAPACITY, make_spec
from tests.helpers import assert_conservation, assert_rng_stream_identity

STAGE = InteractionStage(prompt_tokens=8, output_tokens=4)


def make_interaction(
    session_id: str = "s0",
    num_stages: int = 3,
    start_time: float = 0.0,
    think_time: float = 0.0,
) -> Interaction:
    return Interaction(
        session_id=session_id,
        stages=tuple(STAGE for _ in range(num_stages)),
        start_time=start_time,
        think_time=think_time,
    )


class TestInteractionModel:
    def test_stage_validation(self):
        with pytest.raises(ValueError):
            InteractionStage(prompt_tokens=0, output_tokens=4)
        with pytest.raises(ValueError):
            InteractionStage(prompt_tokens=8, output_tokens=0)
        with pytest.raises(ValueError):
            InteractionStage(prompt_tokens=8, output_tokens=4, max_new_tokens=3)

    def test_interaction_validation(self):
        with pytest.raises(ValueError):
            Interaction(session_id="", stages=(STAGE,))
        with pytest.raises(ValueError):
            Interaction(session_id="s0", stages=())
        with pytest.raises(ValueError):
            Interaction(session_id="s0", stages=(STAGE,), start_time=-1.0)
        with pytest.raises(ValueError):
            Interaction(session_id="s0", stages=(STAGE,), think_time=-1.0)

    def test_specs_accumulate_the_conversation_prefix(self):
        interaction = make_interaction(num_stages=3)
        # Each spec's prompt is the full context of every earlier stage
        # (prompt + output) plus this stage's new tokens.
        assert interaction.context_before(0) == 0
        assert interaction.context_before(2) == 2 * (8 + 4)
        specs = [interaction.spec(stage) for stage in range(3)]
        assert [s.input_length for s in specs] == [8, 20, 32]
        assert [s.request_id for s in specs] == ["s0/t0", "s0/t1", "s0/t2"]
        assert [s.session_stage for s in specs] == [0, 1, 2]
        assert all(s.session_id == "s0" and s.session_stages == 3 for s in specs)
        assert specs[-1].is_final_stage and not specs[0].is_final_stage

    def test_tenant_identity_is_stamped_on_every_turn(self):
        interaction = Interaction(
            session_id="s0", stages=(STAGE, STAGE), user_id="u1", app_id="a2"
        )
        for stage in range(2):
            spec = interaction.spec(stage)
            assert spec.user_id == "u1" and spec.app_id == "a2"

    def test_workload_flattening(self):
        sessions = [make_interaction("s0", 2), make_interaction("s1", 3)]
        workload = interactions_workload("flat", sessions)
        assert len(workload) == 5
        assert workload.has_sessions
        assert workload.session_ids == ["s0", "s1"]


class TestGenerateInteractions:
    def test_deterministic_in_seed(self):
        assert generate_interactions(8, seed=5) == generate_interactions(8, seed=5)
        assert generate_interactions(8, seed=5) != generate_interactions(8, seed=6)

    def test_turn_counts_respect_bounds(self):
        sessions = generate_interactions(40, seed=1, min_turns=2, max_turns=5)
        assert all(2 <= s.num_stages <= 5 for s in sessions)

    def test_start_spacing_and_think_time(self):
        sessions = generate_interactions(4, seed=0, think_time=1.5, start_spacing=2.0)
        assert [s.start_time for s in sessions] == [0.0, 2.0, 4.0, 6.0]
        assert all(s.think_time == 1.5 for s in sessions)

    def test_tenant_stamping(self):
        sessions = generate_interactions(20, seed=3, num_users=4, num_apps=2)
        assert all(s.user_id is not None and s.app_id is not None for s in sessions)
        users = {s.user_id for s in sessions}
        assert users <= {f"u{i}" for i in range(4)}

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_interactions(0)
        with pytest.raises(ValueError):
            generate_interactions(4, min_turns=3, max_turns=2)


class _FinishedTurn:
    def __init__(self, spec):
        self.spec = spec
        self.is_finished = True


class TestInteractionLoadGenerator:
    def test_rejects_empty_and_duplicate_sessions(self):
        with pytest.raises(ValueError):
            InteractionLoadGenerator([])
        with pytest.raises(ValueError):
            InteractionLoadGenerator([make_interaction("s0"), make_interaction("s0")])

    def test_start_schedules_only_first_turns(self):
        generator = InteractionLoadGenerator(
            [make_interaction("s0", start_time=0.0), make_interaction("s1", start_time=3.0)]
        )
        generator.start(0.0)
        assert generator.next_arrival_time() == 0.0
        first = generator.pop_arrivals(0.0)
        assert [s.request_id for s in first] == ["s0/t0"]
        assert generator.in_flight == 1
        assert generator.next_arrival_time() == 3.0
        assert generator.pop_arrivals(2.9) == []

    def test_completion_spawns_next_stage_after_think_time(self):
        generator = InteractionLoadGenerator([make_interaction("s0", 2, think_time=1.0)])
        generator.start(0.0)
        (spec,) = generator.pop_arrivals(0.0)
        generator.on_request_completed(_FinishedTurn(spec), 4.0)
        generator.on_request_finished(4.0)
        assert generator.next_arrival_time() == 5.0
        (follow_up,) = generator.pop_arrivals(5.0)
        assert follow_up.request_id == "s0/t1"
        assert follow_up.arrival_time == 5.0
        assert generator.turns_completed["s0"] == 1

    def test_final_stage_completion_drains_the_generator(self):
        generator = InteractionLoadGenerator([make_interaction("s0", 1)])
        generator.start(0.0)
        (spec,) = generator.pop_arrivals(0.0)
        assert not generator.drained
        generator.on_request_completed(_FinishedTurn(spec), 1.0)
        generator.on_request_finished(1.0)
        assert generator.drained
        assert generator.turns_completed["s0"] == 1

    def test_identity_free_finish_abandons_the_session(self):
        # A throttled or rejected turn releases its slot without the
        # completion hook — the session spawns no further turns.
        generator = InteractionLoadGenerator([make_interaction("s0", 3)])
        generator.start(0.0)
        generator.pop_arrivals(0.0)
        generator.on_request_finished(1.0)
        assert generator.drained
        assert generator.turns_completed["s0"] == 0


def view(replica_id: int, capacity: int = 100_000, used: int = 0, **kwargs) -> ReplicaView:
    return ReplicaView(
        replica_id=replica_id, token_capacity=capacity, used_tokens=used, **kwargs
    )


def turn_spec(stage: int = 0, session_id: str = "s0", stages: int = 4):
    return make_spec(request_id=f"{session_id}/t{stage}").with_session(
        session_id, stage, stages
    )


class TestSessionAffinityRouter:
    def test_registry_exposes_the_router(self):
        assert isinstance(create_router("session-affinity"), SessionAffinityRouter)

    def test_first_turn_places_like_memory_aware_and_records_home(self):
        router = SessionAffinityRouter()
        fallback = MemoryAwareRouter()
        views = [view(0, used=50_000), view(1, used=1_000), view(2, used=60_000)]
        decision = router.decide(turn_spec(0), views)
        assert decision.action is RoutingAction.ROUTE
        assert decision.replica_id == fallback.decide(turn_spec(0), views).replica_id
        assert router.home_of("s0") == decision.replica_id

    def test_follow_up_turns_stick_to_the_home_replica(self):
        router = SessionAffinityRouter()
        views = [view(0, used=1_000), view(1, used=50_000)]
        assert router.decide(turn_spec(0), views).replica_id == 0
        # The home is now the *worse* load-balancing choice — affinity wins.
        loaded = [view(0, used=90_000), view(1, used=0)]
        assert router.decide(turn_spec(1), loaded).replica_id == 0
        assert router.home_of("s0") == 0

    def test_saturated_home_falls_back_and_rehomes(self):
        router = SessionAffinityRouter()
        views = [view(0), view(1, used=50_000)]
        assert router.decide(turn_spec(0), views).replica_id == 0
        saturated_home = [view(0, capacity=100, used=100), view(1)]
        decision = router.decide(turn_spec(1), saturated_home)
        assert decision.replica_id == 1
        assert router.home_of("s0") == 1

    def test_unhealthy_home_falls_back_to_healthy_replicas(self):
        router = SessionAffinityRouter()
        views = [view(0), view(1, used=50_000)]
        assert router.decide(turn_spec(0), views).replica_id == 0
        degraded_home = [view(0, health="degraded"), view(1)]
        assert router.decide(turn_spec(1), degraded_home).replica_id == 1

    def test_departed_home_falls_back(self):
        router = SessionAffinityRouter()
        assert router.decide(turn_spec(0), [view(0), view(1, used=50_000)]).replica_id == 0
        # Replica 0 crashed out of the routable set entirely.
        decision = router.decide(turn_spec(1), [view(1), view(2, used=50_000)])
        assert decision.replica_id == 1
        assert router.home_of("s0") == 1

    def test_sessionless_traffic_is_routed_memory_aware_without_homes(self):
        router = SessionAffinityRouter()
        busy = view(
            0,
            used=50_000,
            running_current_tokens=(50_000,),
            running_generated_tokens=(100,),
        )
        decision = router.decide(make_spec(), [busy, view(1)])
        assert decision.replica_id == 1
        assert router.home_of("s0") is None

    def test_on_run_start_forgets_homes(self):
        router = SessionAffinityRouter()
        router.decide(turn_spec(0), [view(0), view(1)])
        assert router.home_of("s0") is not None
        router.on_run_start()
        assert router.home_of("s0") is None


def finished_turn(spec, arrival: float = 0.0, ttft: float = 0.5) -> Request:
    request = Request(spec=spec, arrival_time=arrival)
    request.admit(arrival)
    request.deliver_token(arrival + ttft)
    request.finish(arrival + ttft + 0.1)
    return request


class TestSummarizeSessions:
    def test_completed_session(self):
        requests = [finished_turn(turn_spec(stage, stages=2)) for stage in range(2)]
        summary = summarize_sessions(requests)
        assert summary.num_sessions == 1
        assert summary.completed_sessions == 1
        assert summary.abandoned_sessions == 0
        assert summary.total_turns == 2
        assert summary.sessions[0].ttft_by_stage == {0: 0.5, 1: 0.5}

    def test_missing_final_stage_marks_abandonment(self):
        summary = summarize_sessions([finished_turn(turn_spec(0, stages=3))])
        assert summary.abandoned_sessions == 1
        assert summary.sessions[0].turns_completed == 1

    def test_rejected_turn_dooms_the_session(self):
        served = [finished_turn(turn_spec(0, stages=3))]
        rejected = [Request(spec=turn_spec(1, stages=3), arrival_time=1.0)]
        summary = summarize_sessions(served, rejected=rejected)
        assert summary.abandoned_sessions == 1

    def test_crash_retry_finishing_under_same_id_does_not_doom(self):
        # The fault subsystem keeps the aborted original in ``failed`` even
        # when its retry (same request id) later finished — the session must
        # still count as completed.
        spec = turn_spec(0, stages=1)
        aborted = Request(spec=spec, arrival_time=0.0)
        aborted.admit(0.0)
        aborted.abort(0.3)
        summary = summarize_sessions([finished_turn(spec)], failed=[aborted])
        assert summary.abandoned_sessions == 0
        assert summary.completed_sessions == 1

    def test_failed_turn_without_retry_dooms(self):
        spec = turn_spec(0, stages=2)
        aborted = Request(spec=spec, arrival_time=0.0)
        aborted.admit(0.0)
        aborted.abort(0.3)
        summary = summarize_sessions([], failed=[aborted])
        # The session never appears in served requests, only via the doom set
        # folded over the requests that did: nothing served means no outcome
        # rows, so fold the aborted turn in through the served list instead.
        assert summary.num_sessions == 0
        summary = summarize_sessions(
            [finished_turn(turn_spec(1, session_id="s0", stages=2))], failed=[aborted]
        )
        assert summary.abandoned_sessions == 1

    def test_sla_violations_counted_per_session(self):
        sla = SLASpec(ttft_limit=1.0, mtpot_limit=10.0)
        ok = finished_turn(turn_spec(0, session_id="fast", stages=1), ttft=0.2)
        slow = finished_turn(turn_spec(0, session_id="slow", stages=1), ttft=5.0)
        summary = summarize_sessions([ok, slow], sla=sla)
        assert summary.sla_violating_sessions == 1

    def test_prefix_stats_attach_to_the_summary(self):
        stats = PrefixCacheStats(hits=3, misses=1)
        summary = summarize_sessions(
            [finished_turn(turn_spec(0, stages=1))], prefix_stats=stats
        )
        assert summary.prefix_hit_rate == 0.75
        assert summary.summary()["prefix"]["hits"] == 3
        cacheless = summarize_sessions([finished_turn(turn_spec(0, stages=1))])
        assert cacheless.prefix_hit_rate == 0.0
        assert "prefix" not in cacheless.summary()


def small_sessions(num_sessions: int = 8):
    return generate_interactions(
        num_sessions,
        seed=9,
        mean_prompt_tokens=24.0,
        mean_output_tokens=8.0,
        min_turns=2,
        max_turns=4,
    )


class TestRunSessionsEndToEnd:
    def test_server_run_sessions_completes_and_reuses_prefixes(self, platform_7b):
        simulator = ServingSimulator(
            platform=platform_7b,
            scheduler=ConservativeScheduler(),
            token_capacity_override=TINY_CAPACITY,
            prefix_cache_tokens=TINY_CAPACITY // 2,
        )
        result = simulator.run_sessions(small_sessions())
        assert_conservation(result)
        summary = result.session_summary()
        assert summary.num_sessions == 8
        assert summary.completed_sessions == 8
        assert summary.abandoned_sessions == 0
        assert result.prefix_stats is not None
        assert result.prefix_stats.hits > 0
        assert result.prefix_stats.reused_tokens > 0
        # A later stage re-arrives only after its predecessor finished.
        assert summary.total_turns == sum(s.num_stages for s in small_sessions())

    def test_cluster_fast_path_matches_reference_with_sessions(self, platform_7b):
        def run(fast_path: bool):
            simulator = ClusterSimulator(
                platform=platform_7b,
                num_replicas=2,
                router="session-affinity",
                scheduler_name="conservative",
                token_capacity_override=TINY_CAPACITY,
                prefix_cache_tokens=TINY_CAPACITY // 2,
                fast_path=fast_path,
            )
            return simulator.run_sessions(small_sessions())

        fast, reference = run(True), run(False)
        assert_rng_stream_identity(fast, reference)
        stats = fast.jump_stats
        assert stats is not None
        assert stats.silent_jumps + stats.saturated_jumps > 0

    def test_cluster_affinity_beats_blind_hit_rate(self, platform_7b):
        def run(router: str):
            simulator = ClusterSimulator(
                platform=platform_7b,
                num_replicas=2,
                router=router,
                scheduler_name="conservative",
                token_capacity_override=TINY_CAPACITY,
                prefix_cache_tokens=TINY_CAPACITY // 2,
            )
            return simulator.run_sessions(small_sessions())

        affinity = run("session-affinity")
        blind = run("round-robin")
        assert_conservation(affinity)
        assert affinity.prefix_stats is not None and blind.prefix_stats is not None
        assert affinity.prefix_stats.hit_rate > blind.prefix_stats.hit_rate

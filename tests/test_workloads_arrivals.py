"""Tests for arrival-time assignment (Poisson and bursty traces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.arrivals import (
    assign_bursty_arrivals,
    assign_diurnal_arrivals,
    assign_poisson_arrivals,
)
from tests.conftest import make_workload


class TestPoissonArrivals:
    def test_stamps_every_request(self):
        workload = assign_poisson_arrivals(make_workload(num_requests=50), request_rate=4.0, seed=1)
        assert all(spec.arrival_time is not None for spec in workload)

    def test_arrival_times_increase(self):
        workload = assign_poisson_arrivals(make_workload(num_requests=50), request_rate=4.0, seed=1)
        times = [spec.arrival_time for spec in workload]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_rate_controls_span(self):
        fast = assign_poisson_arrivals(make_workload(num_requests=200), request_rate=20.0, seed=2)
        slow = assign_poisson_arrivals(make_workload(num_requests=200), request_rate=2.0, seed=2)
        assert fast.requests[-1].arrival_time < slow.requests[-1].arrival_time

    def test_deterministic_per_seed(self):
        first = assign_poisson_arrivals(make_workload(), request_rate=4.0, seed=3)
        second = assign_poisson_arrivals(make_workload(), request_rate=4.0, seed=3)
        assert [s.arrival_time for s in first] == [s.arrival_time for s in second]

    def test_preserves_lengths_and_ids(self):
        base = make_workload(num_requests=10)
        stamped = assign_poisson_arrivals(base, request_rate=4.0)
        assert [s.request_id for s in stamped] == [s.request_id for s in base]
        assert [s.input_length for s in stamped] == [s.input_length for s in base]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            assign_poisson_arrivals(make_workload(), request_rate=0.0)


class TestBurstyArrivals:
    def test_arrival_times_increase(self):
        workload = assign_bursty_arrivals(
            make_workload(num_requests=128), base_rate=1.0, burst_rate=50.0, seed=5
        )
        times = [spec.arrival_time for spec in workload]
        assert times == sorted(times)

    def test_bursts_are_denser_than_lulls(self):
        workload = assign_bursty_arrivals(
            make_workload(num_requests=640),
            base_rate=1.0,
            burst_rate=100.0,
            burst_length=32,
            cycle_length=64,
            seed=5,
        )
        times = np.array([spec.arrival_time for spec in workload])
        gaps = np.diff(times)
        positions = np.arange(1, len(times)) % 64
        burst_gaps = gaps[positions < 32]
        lull_gaps = gaps[positions >= 32]
        assert burst_gaps.mean() < lull_gaps.mean() / 10

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            assign_bursty_arrivals(make_workload(), base_rate=0.0, burst_rate=10.0)
        with pytest.raises(ValueError, match="exceed"):
            assign_bursty_arrivals(make_workload(), base_rate=10.0, burst_rate=5.0)
        with pytest.raises(ValueError, match="burst_length"):
            assign_bursty_arrivals(
                make_workload(), base_rate=1.0, burst_rate=10.0, burst_length=9, cycle_length=8
            )

    def test_description_notes_burstiness(self):
        workload = assign_bursty_arrivals(make_workload(), base_rate=1.0, burst_rate=10.0)
        assert "bursty" in workload.description


class TestExplicitGenerator:
    """An explicit numpy Generator threads through both stampers."""

    def test_rng_matches_equivalent_seed(self):
        by_seed = assign_poisson_arrivals(make_workload(), request_rate=4.0, seed=7)
        by_rng = assign_poisson_arrivals(
            make_workload(), request_rate=4.0, rng=np.random.default_rng(7)
        )
        assert [s.arrival_time for s in by_rng] == [s.arrival_time for s in by_seed]

    def test_bursty_rng_matches_equivalent_seed(self):
        by_seed = assign_bursty_arrivals(make_workload(), base_rate=1.0, burst_rate=10.0, seed=7)
        by_rng = assign_bursty_arrivals(
            make_workload(), base_rate=1.0, burst_rate=10.0, rng=np.random.default_rng(7)
        )
        assert [s.arrival_time for s in by_rng] == [s.arrival_time for s in by_seed]

    def test_rng_takes_precedence_over_seed(self):
        stamped = assign_poisson_arrivals(
            make_workload(), request_rate=4.0, seed=999, rng=np.random.default_rng(7)
        )
        reference = assign_poisson_arrivals(make_workload(), request_rate=4.0, seed=7)
        assert [s.arrival_time for s in stamped] == [s.arrival_time for s in reference]

    def test_shared_rng_continues_one_stream(self):
        # Two stampings drawing from one generator consume one stream — the
        # second differs from the first, but the whole sequence reproduces
        # end-to-end from the single seed.
        rng = np.random.default_rng(7)
        first = assign_bursty_arrivals(make_workload(), base_rate=1.0, burst_rate=10.0, rng=rng)
        second = assign_bursty_arrivals(make_workload(), base_rate=1.0, burst_rate=10.0, rng=rng)
        assert [s.arrival_time for s in first] != [s.arrival_time for s in second]

        replay = np.random.default_rng(7)
        first_replay = assign_bursty_arrivals(
            make_workload(), base_rate=1.0, burst_rate=10.0, rng=replay
        )
        second_replay = assign_bursty_arrivals(
            make_workload(), base_rate=1.0, burst_rate=10.0, rng=replay
        )
        assert [s.arrival_time for s in first] == [s.arrival_time for s in first_replay]
        assert [s.arrival_time for s in second] == [s.arrival_time for s in second_replay]


class TestDiurnalArrivals:
    def stamp(self, num_requests=200, **overrides):
        kwargs = dict(
            base_rate=1.0,
            burst_rate=10.0,
            period=30.0,
            amplitude=0.5,
            burst_length=8,
            cycle_length=16,
            seed=3,
        )
        kwargs.update(overrides)
        return assign_diurnal_arrivals(make_workload(num_requests=num_requests), **kwargs)

    def test_arrival_times_increase(self):
        times = [s.arrival_time for s in self.stamp()]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_deterministic_per_seed(self):
        first = [s.arrival_time for s in self.stamp(seed=5)]
        second = [s.arrival_time for s in self.stamp(seed=5)]
        assert first == second
        assert first != [s.arrival_time for s in self.stamp(seed=6)]

    def test_zero_amplitude_matches_plain_bursty(self):
        # With a flat envelope the diurnal process degenerates to the bursty
        # one, drawing the identical exponential stream.
        flat = self.stamp(amplitude=0.0)
        bursty = assign_bursty_arrivals(
            make_workload(num_requests=200),
            base_rate=1.0,
            burst_rate=10.0,
            burst_length=8,
            cycle_length=16,
            seed=3,
        )
        assert [s.arrival_time for s in flat] == pytest.approx(
            [s.arrival_time for s in bursty]
        )

    def test_envelope_modulates_local_rate(self):
        # With bursts disabled (burst phase == whole cycle, rates equal) the
        # crest half-period must pack arrivals more densely than the trough.
        workload = assign_diurnal_arrivals(
            make_workload(num_requests=2000),
            base_rate=8.0,
            burst_rate=8.0001,
            period=40.0,
            amplitude=0.9,
            burst_length=16,
            cycle_length=16,
            seed=4,
        )
        times = np.array([s.arrival_time for s in workload])
        # First half-period (envelope above 1) vs second (below 1).
        crest = np.sum(times < 20.0)
        trough = np.sum((times >= 20.0) & (times < 40.0))
        assert crest > 1.5 * trough

    def test_rng_matches_equivalent_seed(self):
        by_seed = self.stamp(seed=7)
        by_rng = self.stamp(rng=np.random.default_rng(7), seed=999)
        assert [s.arrival_time for s in by_rng] == [s.arrival_time for s in by_seed]

    def test_description_notes_the_envelope(self):
        assert "diurnal" in self.stamp().description

    def test_validation(self):
        with pytest.raises(ValueError, match="period"):
            self.stamp(period=0.0)
        with pytest.raises(ValueError, match="amplitude"):
            self.stamp(amplitude=1.0)
        with pytest.raises(ValueError, match="burst_rate"):
            self.stamp(burst_rate=0.5)
        with pytest.raises(ValueError, match="rates"):
            self.stamp(base_rate=-1.0)

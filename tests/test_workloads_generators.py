"""Tests for the synthetic workload and trace generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.models import LLAMA2_7B, LLAVA_15_7B, QWEN_VL_CHAT
from repro.workloads.burstgpt import (
    FIGURE3_TRACES,
    figure3_trace,
    generate_api_trace,
    generate_conversation_trace,
)
from repro.workloads.distributions import (
    DISTRIBUTION_1,
    DISTRIBUTION_2,
    DISTRIBUTION_3,
    distribution_workload,
    generate_uniform_workload,
)
from repro.workloads.mixed import generate_phase_workload, generate_varying_load
from repro.workloads.multimodal import generate_textvqa_workload
from repro.workloads.sharegpt import (
    generate_sharegpt_o1_workload,
    generate_sharegpt_workload,
)


class TestUniformDistributions:
    def test_lengths_within_ranges(self):
        workload = generate_uniform_workload(DISTRIBUTION_1, 500, seed=1)
        for spec in workload:
            assert 32 <= spec.input_length <= 4096
            assert spec.output_length <= 4096
        assert workload.is_decode_heavy

    def test_distribution3_is_prefill_heavy(self):
        workload = generate_uniform_workload(DISTRIBUTION_3, 500, seed=2)
        assert not workload.is_decode_heavy

    def test_distribution2_is_balanced(self):
        workload = generate_uniform_workload(DISTRIBUTION_2, 2000, seed=3)
        ratio = workload.mean_output_length / workload.mean_input_length
        assert 0.9 < ratio < 1.1

    def test_deterministic_with_seed(self):
        a = generate_uniform_workload(DISTRIBUTION_1, 50, seed=9)
        b = generate_uniform_workload(DISTRIBUTION_1, 50, seed=9)
        assert a.output_lengths == b.output_lengths

    def test_different_seeds_differ(self):
        a = generate_uniform_workload(DISTRIBUTION_1, 50, seed=1)
        b = generate_uniform_workload(DISTRIBUTION_1, 50, seed=2)
        assert a.output_lengths != b.output_lengths

    def test_lookup_by_name(self):
        workload = distribution_workload("Distribution-2", 10)
        assert workload.name == "Distribution-2"
        with pytest.raises(KeyError):
            distribution_workload("Distribution-9", 10)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            generate_uniform_workload(DISTRIBUTION_1, 0)


class TestShareGPT:
    def test_sharegpt_respects_cap(self):
        workload = generate_sharegpt_workload(300, seed=4, max_new_tokens=2048)
        assert all(spec.output_length <= 2048 for spec in workload)
        assert all(spec.max_new_tokens == 2048 for spec in workload)

    def test_sharegpt_o1_is_decode_heavy(self):
        workload = generate_sharegpt_o1_workload(500, seed=5)
        assert workload.is_decode_heavy
        # Paper reports ~381 input / ~2160 output tokens on average.
        assert 200 < workload.mean_input_length < 700
        assert 1400 < workload.mean_output_length < 3200

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            generate_sharegpt_workload(0)
        with pytest.raises(ValueError):
            generate_sharegpt_o1_workload(-1)


class TestBurstGPTTraces:
    def test_conversation_trace_is_stationary(self):
        workload = generate_conversation_trace(4000, seed=6)
        lengths = np.array(workload.output_lengths)
        first_half_mean = lengths[:2000].mean()
        second_half_mean = lengths[2000:].mean()
        assert abs(first_half_mean - second_half_mean) / first_half_mean < 0.15

    def test_api_trace_drifts_over_time(self):
        workload = generate_api_trace(20000, seed=7, drift_period=10000)
        lengths = np.array(workload.output_lengths)
        first = lengths[:4000].mean()
        middle = lengths[8000:12000].mean()
        # The mixture rotation makes distant segments differ noticeably.
        assert abs(first - middle) / first > 0.15

    def test_api_trace_request_ids_in_order(self):
        workload = generate_api_trace(100, seed=8)
        indices = [int(spec.request_id.rsplit("-", 1)[1]) for spec in workload]
        assert indices == sorted(indices)

    def test_figure3_labels_all_generate(self):
        for label in FIGURE3_TRACES:
            workload = figure3_trace(label, 200, seed=1)
            assert len(workload) == 200

    def test_figure3_unknown_label(self):
        with pytest.raises(KeyError):
            figure3_trace("(z) Unknown", 10)

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            generate_conversation_trace(0)
        with pytest.raises(ValueError):
            generate_api_trace(0)


class TestMultimodal:
    def test_image_tokens_match_model(self):
        qwen = generate_textvqa_workload(QWEN_VL_CHAT, 100, seed=1)
        llava = generate_textvqa_workload(LLAVA_15_7B, 100, seed=1)
        assert all(spec.image_tokens == 256 for spec in qwen)
        assert all(spec.image_tokens == 576 for spec in llava)

    def test_answers_are_short(self):
        workload = generate_textvqa_workload(QWEN_VL_CHAT, 500, seed=2)
        assert workload.mean_output_length < 40

    def test_text_only_model_rejected(self):
        with pytest.raises(ValueError):
            generate_textvqa_workload(LLAMA2_7B, 10)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            generate_textvqa_workload(QWEN_VL_CHAT, 0)


class TestMixedWorkloads:
    def test_varying_load_has_four_phases(self):
        workload = generate_varying_load(50, seed=3)
        assert len(workload) == 200
        assert "ShareGPT-o1" in workload.description

    def test_phase_order_preserved(self):
        workload = generate_varying_load(100, seed=4)
        # First phase (ShareGPT-o1) is decode heavy with short-ish inputs;
        # last phase (Distribution-3) is prefill heavy.
        first_phase = workload.requests[:100]
        last_phase = workload.requests[-100:]
        first_ratio = np.mean([s.output_length for s in first_phase]) / np.mean(
            [s.input_length for s in first_phase]
        )
        last_ratio = np.mean([s.output_length for s in last_phase]) / np.mean(
            [s.input_length for s in last_phase]
        )
        assert first_ratio > 1.0
        assert last_ratio < 1.0

    def test_phase_workload_requires_phases(self):
        with pytest.raises(ValueError):
            generate_phase_workload("empty", [])

    def test_rejects_non_positive_phase_size(self):
        with pytest.raises(ValueError):
            generate_varying_load(0)

"""Tests for request specs and workload containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.spec import (
    SLA_CLASS_BATCH,
    SLA_CLASS_INTERACTIVE,
    Workload,
    assign_sla_classes,
    concatenate,
    interleave,
    scale_workload,
)
from tests.conftest import make_spec, make_workload


class TestRequestSpec:
    def test_valid_spec(self):
        spec = make_spec(input_length=10, output_length=5, max_new_tokens=20)
        assert spec.prompt_tokens == 10
        assert spec.total_tokens == 15
        assert spec.worst_case_tokens == 30

    def test_image_tokens_add_to_prompt(self):
        spec = make_spec(input_length=10, image_tokens=256)
        assert spec.prompt_tokens == 266

    def test_rejects_negative_input(self):
        with pytest.raises(ValueError):
            make_spec(input_length=-1)

    def test_rejects_non_positive_output(self):
        with pytest.raises(ValueError):
            make_spec(output_length=0)

    def test_rejects_output_above_cap(self):
        with pytest.raises(ValueError):
            make_spec(output_length=100, max_new_tokens=50)

    def test_rejects_negative_image_tokens(self):
        with pytest.raises(ValueError):
            make_spec(image_tokens=-1)

    def test_with_arrival(self):
        spec = make_spec()
        timed = spec.with_arrival(3.5)
        assert timed.arrival_time == 3.5
        assert spec.arrival_time is None


class TestWorkload:
    def test_duplicate_ids_rejected(self):
        spec = make_spec(request_id="dup")
        with pytest.raises(ValueError):
            Workload(name="w", requests=[spec, spec])

    def test_iteration_and_indexing(self):
        workload = make_workload(num_requests=3)
        assert len(workload) == 3
        assert list(workload)[0] is workload[0]

    def test_means(self):
        workload = make_workload(num_requests=4, input_length=10, output_length=30)
        assert workload.mean_input_length == 10
        assert workload.mean_output_length == 30
        assert workload.is_decode_heavy

    def test_empty_workload_statistics(self):
        workload = Workload(name="empty")
        assert workload.mean_input_length == 0.0
        assert workload.mean_output_length == 0.0
        assert workload.total_output_tokens == 0

    def test_output_lengths_and_total(self):
        workload = make_workload(num_requests=5, output_length=7)
        assert workload.output_lengths == [7] * 5
        assert workload.total_output_tokens == 35

    def test_head(self):
        workload = make_workload(num_requests=10)
        assert len(workload.head(3)) == 3

    def test_renumbered_ids_unique(self):
        workload = make_workload(num_requests=3, name="a")
        renamed = workload.renumbered("x")
        assert [r.request_id for r in renamed] == ["x-0", "x-1", "x-2"]


class TestComposition:
    def test_concatenate_preserves_order_and_renames(self):
        first = make_workload(num_requests=2, name="alpha")
        second = make_workload(num_requests=3, name="beta")
        combined = concatenate("combo", [first, second])
        assert len(combined) == 5
        assert combined[0].request_id.startswith("w0-")
        assert combined[-1].request_id.startswith("w1-")

    def test_interleave_round_robins(self):
        first = make_workload(num_requests=3, name="alpha", output_length=11)
        second = make_workload(num_requests=1, name="beta", output_length=22)
        mixed = interleave("mix", [first, second])
        assert len(mixed) == 4
        assert mixed[0].output_length == 11
        assert mixed[1].output_length == 22
        assert mixed[2].output_length == 11

    def test_scale_workload_halves_lengths(self):
        workload = make_workload(num_requests=2, input_length=100, output_length=50, max_new_tokens=80)
        scaled = scale_workload(workload, 0.5)
        assert scaled[0].input_length == 50
        assert scaled[0].output_length == 25
        assert scaled[0].max_new_tokens == 40

    def test_scale_workload_respects_floor_and_cap_invariant(self):
        workload = make_workload(num_requests=2, input_length=3, output_length=2, max_new_tokens=2)
        scaled = scale_workload(workload, 0.01)
        for spec in scaled:
            assert spec.output_length >= 1
            assert spec.max_new_tokens >= spec.output_length

    def test_scale_workload_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            scale_workload(make_workload(), 0.0)


class TestSLAClasses:
    def test_default_class_is_interactive(self):
        assert make_spec().sla_class == SLA_CLASS_INTERACTIVE

    def test_with_sla_class(self):
        spec = make_spec().with_sla_class(SLA_CLASS_BATCH)
        assert spec.sla_class == SLA_CLASS_BATCH
        assert make_spec().sla_class == SLA_CLASS_INTERACTIVE

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError, match="sla_class"):
            make_spec().with_sla_class("")

    def test_class_counts_and_classes(self):
        workload = Workload(
            name="mixed",
            requests=[
                make_spec(request_id="a"),
                make_spec(request_id="b").with_sla_class(SLA_CLASS_BATCH),
                make_spec(request_id="c").with_sla_class(SLA_CLASS_BATCH),
            ],
        )
        assert workload.sla_classes == [SLA_CLASS_BATCH, SLA_CLASS_INTERACTIVE]
        assert workload.class_counts() == {SLA_CLASS_BATCH: 2, SLA_CLASS_INTERACTIVE: 1}

    def test_assign_sla_classes_mixes_to_fractions(self):
        workload = make_workload(num_requests=400)
        stamped = assign_sla_classes(
            workload, {SLA_CLASS_INTERACTIVE: 0.75, SLA_CLASS_BATCH: 0.25}, seed=1
        )
        counts = stamped.class_counts()
        assert counts[SLA_CLASS_INTERACTIVE] + counts[SLA_CLASS_BATCH] == 400
        assert 0.6 < counts[SLA_CLASS_INTERACTIVE] / 400 < 0.9
        assert "classes:" in stamped.description

    def test_assign_sla_classes_deterministic_and_rng_threaded(self):
        workload = make_workload(num_requests=50)
        fractions = {SLA_CLASS_INTERACTIVE: 0.5, SLA_CLASS_BATCH: 0.5}
        by_seed = assign_sla_classes(workload, fractions, seed=9)
        by_rng = assign_sla_classes(workload, fractions, rng=np.random.default_rng(9))
        assert [s.sla_class for s in by_seed] == [s.sla_class for s in by_rng]

    def test_assign_sla_classes_validation(self):
        workload = make_workload(num_requests=4)
        with pytest.raises(ValueError, match="at least one"):
            assign_sla_classes(workload, {})
        with pytest.raises(ValueError, match="sum to 1"):
            assign_sla_classes(workload, {"a": 0.5, "b": 0.1})

    def test_scale_workload_preserves_classes(self):
        workload = Workload(
            name="w", requests=[make_spec(request_id="a").with_sla_class(SLA_CLASS_BATCH)]
        )
        scaled = scale_workload(workload, 0.5)
        assert scaled.requests[0].sla_class == SLA_CLASS_BATCH

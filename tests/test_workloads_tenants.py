"""Tests for tenant identities and heavy-tail tenant populations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.spec import RequestSpec
from repro.workloads.tenants import (
    TenantPopulation,
    TenantProfile,
    assign_tenants,
    generate_tenant_population,
)
from tests.conftest import make_spec, make_workload


class TestRequestSpecTenantFields:
    def test_defaults_to_tenantless(self):
        spec = make_spec()
        assert spec.user_id is None
        assert spec.app_id is None

    def test_with_tenant_stamps_identities(self):
        spec = make_spec().with_tenant("alice", app_id="chat")
        assert spec.user_id == "alice"
        assert spec.app_id == "chat"
        # Everything else is untouched.
        assert spec.input_length == make_spec().input_length

    def test_empty_identity_rejected(self):
        with pytest.raises(ValueError, match="user_id"):
            make_spec().with_tenant("")
        with pytest.raises(ValueError, match="app_id"):
            RequestSpec(
                request_id="r0",
                input_length=8,
                output_length=4,
                max_new_tokens=16,
                app_id="",
            )

    def test_workload_tenant_properties(self):
        workload = make_workload(num_requests=4)
        assert not workload.has_tenants
        assert workload.user_ids == []
        stamped = type(workload)(
            name=workload.name,
            requests=[
                workload.requests[0].with_tenant("bob", app_id="search"),
                workload.requests[1].with_tenant("alice", app_id="chat"),
                workload.requests[2].with_tenant("alice", app_id="chat"),
                workload.requests[3],
            ],
        )
        assert stamped.has_tenants
        assert stamped.user_ids == ["alice", "bob"]
        assert stamped.app_ids == ["chat", "search"]


class TestTenantPopulation:
    def test_profile_validation(self):
        with pytest.raises(ValueError, match="user_id"):
            TenantProfile(user_id="", app_id="a", share=1.0)
        with pytest.raises(ValueError, match="share"):
            TenantProfile(user_id="u", app_id="a", share=-0.1)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            TenantPopulation(
                tenants=(
                    TenantProfile("u0", "a", 0.5),
                    TenantProfile("u1", "a", 0.4),
                )
            )

    def test_duplicate_users_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TenantPopulation(
                tenants=(
                    TenantProfile("u0", "a", 0.5),
                    TenantProfile("u0", "b", 0.5),
                )
            )

    def test_share_of(self):
        population = generate_tenant_population(4)
        assert population.share_of("user-0000") == population.shares[0]
        with pytest.raises(KeyError):
            population.share_of("nobody")


class TestGenerateTenantPopulation:
    def test_shares_sum_to_one_and_deterministic(self):
        a = generate_tenant_population(16, num_apps=3, abusive_users=2, abusive_share=0.5)
        b = generate_tenant_population(16, num_apps=3, abusive_users=2, abusive_share=0.5)
        assert a == b
        assert a.shares.sum() == pytest.approx(1.0)
        assert a.num_users == 16
        assert a.app_ids == ["app-0", "app-1", "app-2"]

    def test_abusive_head_splits_share_evenly(self):
        population = generate_tenant_population(10, abusive_users=2, abusive_share=0.6)
        assert population.shares[0] == pytest.approx(0.3)
        assert population.shares[1] == pytest.approx(0.3)
        assert population.shares[2:].sum() == pytest.approx(0.4)

    def test_tail_is_zipf_decreasing(self):
        population = generate_tenant_population(8, zipf_alpha=1.2)
        shares = population.shares
        assert all(shares[i] > shares[i + 1] for i in range(len(shares) - 1))
        # k-th tail user carries weight proportional to k^-alpha.
        assert shares[1] / shares[0] == pytest.approx(2.0**-1.2)

    def test_apps_round_robin(self):
        population = generate_tenant_population(5, num_apps=2)
        assert [t.app_id for t in population.tenants] == [
            "app-0",
            "app-1",
            "app-0",
            "app-1",
            "app-0",
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="num_users"):
            generate_tenant_population(0)
        with pytest.raises(ValueError, match="num_apps"):
            generate_tenant_population(4, num_apps=5)
        with pytest.raises(ValueError, match="zipf_alpha"):
            generate_tenant_population(4, zipf_alpha=0.0)
        with pytest.raises(ValueError, match="set together"):
            generate_tenant_population(4, abusive_users=1)
        with pytest.raises(ValueError, match="set together"):
            generate_tenant_population(4, abusive_share=0.5)
        with pytest.raises(ValueError, match="abusive_share"):
            generate_tenant_population(4, abusive_users=1, abusive_share=1.0)


class TestAssignTenants:
    def test_stamps_every_request(self):
        workload = make_workload(num_requests=50)
        population = generate_tenant_population(4, num_apps=2)
        stamped = assign_tenants(workload, population, seed=3)
        assert stamped.has_tenants
        assert all(spec.user_id is not None for spec in stamped.requests)
        assert all(spec.app_id is not None for spec in stamped.requests)
        assert set(stamped.user_ids) <= set(population.user_ids)
        # User/app pairing follows the population's binding.
        binding = {t.user_id: t.app_id for t in population.tenants}
        assert all(spec.app_id == binding[spec.user_id] for spec in stamped.requests)

    def test_deterministic_per_seed(self):
        workload = make_workload(num_requests=30)
        population = generate_tenant_population(6)
        a = assign_tenants(workload, population, seed=5)
        b = assign_tenants(workload, population, seed=5)
        c = assign_tenants(workload, population, seed=6)
        assert [s.user_id for s in a.requests] == [s.user_id for s in b.requests]
        assert [s.user_id for s in a.requests] != [s.user_id for s in c.requests]

    def test_explicit_rng_takes_precedence(self):
        workload = make_workload(num_requests=30)
        population = generate_tenant_population(6)
        from_seed = assign_tenants(workload, population, seed=5)
        from_rng = assign_tenants(
            workload, population, seed=999, rng=np.random.default_rng(5)
        )
        assert [s.user_id for s in from_seed.requests] == [
            s.user_id for s in from_rng.requests
        ]

    def test_heavy_tail_dominates_assignment(self):
        workload = make_workload(num_requests=400)
        population = generate_tenant_population(10, abusive_users=1, abusive_share=0.7)
        stamped = assign_tenants(workload, population, seed=1)
        abusive = sum(1 for s in stamped.requests if s.user_id == "user-0000")
        assert abusive / len(stamped.requests) == pytest.approx(0.7, abs=0.08)

    def test_preserves_lengths_and_description_notes_population(self):
        workload = make_workload(num_requests=5)
        population = generate_tenant_population(2)
        stamped = assign_tenants(workload, population)
        assert [s.input_length for s in stamped.requests] == [
            s.input_length for s in workload.requests
        ]
        assert "tenants:" in stamped.description

#!/usr/bin/env python3
"""Chaos smoke: the seeded fig14 fault schedule must be deterministic.

Runs the fig14 chaos scenario (four-replica fleet, two crashes, one 3x
straggler window, retries and replacement launches — see
``docs/resilience.md``) twice under the fast path and once under the
reference loop, then asserts all three result fingerprints are identical:

* run 1 vs run 2 — the same seeded :class:`repro.serving.faults.FaultPlan`
  over the same workload is bit-reproducible, so a chaos experiment can be
  replayed and debugged like any other simulation;
* fast path vs reference — event jumps never fuse across a fault edge, so
  macro-stepping stays bit-identical even mid-outage.

Exit status is non-zero on any mismatch; this is CI's ``chaos-smoke`` job.

Run from anywhere inside the checkout::

    python tools/chaos_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path


def repo_root() -> Path:
    """The checkout root (where ``pyproject.toml`` lives)."""
    for parent in (Path(__file__).resolve(), *Path(__file__).resolve().parents):
        if (parent / "pyproject.toml").exists():
            return parent
    raise SystemExit("could not locate the repo root (no pyproject.toml found)")


try:  # pragma: no cover - exercised when the package is not installed
    import repro.analysis  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(repo_root() / "src"))

from repro.analysis.perf import SCENARIOS

SCENARIO_NAME = "fig14_failure_recovery"


def main() -> int:
    """Run the chaos scenario three ways and compare fingerprints."""
    scenario = next(s for s in SCENARIOS if s.name == SCENARIO_NAME)
    runs = {
        "fast-1": scenario.run(True),
        "fast-2": scenario.run(True),
        "reference": scenario.run(False),
    }
    fingerprints = {label: fingerprint for label, (_, fingerprint, _) in runs.items()}
    for label, fingerprint in fingerprints.items():
        print(f"{SCENARIO_NAME} [{label}]: {fingerprint[:16]}...")
    if len(set(fingerprints.values())) != 1:
        print("chaos-smoke FAILED: fingerprints diverged — chaos is not deterministic")
        return 1
    print("chaos-smoke ok: seeded fault schedule is bit-reproducible on both loops")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Documentation checker: links resolve, fenced Python snippets execute.

Walks ``README.md`` and every Markdown file under ``docs/`` and enforces the
two properties that keep prose honest:

1. **Links** — every relative Markdown link (and image) must point at a file
   or directory that exists in the checkout.  External (``http(s)://``,
   ``mailto:``) links and pure ``#fragment`` anchors are not checked.
2. **Snippets** — every fenced ```` ```python ```` block is executed against
   the installed package, each in a fresh namespace, with the repo root as
   the working directory.  A snippet that raises fails the check, so example
   code cannot rot silently.  A fence immediately preceded by an
   ``<!-- docs-check: skip -->`` comment (optionally with blank lines in
   between) is skipped — use it for deliberately partial fragments.

Run from anywhere inside the checkout::

    python tools/check_docs.py

Exit status is non-zero when any link is broken or any snippet fails; this is
the ``docs-check`` CI job's second half (the first half is ruff's
missing-docstring rules over ``repro.serving`` and ``repro.core``).
"""

from __future__ import annotations

import os
import re
import sys
import traceback
from dataclasses import dataclass
from pathlib import Path

SKIP_MARKER = "<!-- docs-check: skip -->"

#: Pages every checkout must ship: the docs subsystem's table of contents.
#: A page listed here that is missing from ``docs/`` fails the check, so a
#: refactor cannot silently drop documentation (renames must update this
#: manifest alongside the README links).
REQUIRED_DOCS = (
    "architecture.md",
    "fairness.md",
    "migration.md",
    "observability.md",
    "performance.md",
    "resilience.md",
    "sessions.md",
    "simulation-semantics.md",
)

#: Markdown inline links/images: [text](target) / ![alt](target).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point outside the checkout and are therefore not checked.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def repo_root() -> Path:
    """The checkout root (where ``pyproject.toml`` lives)."""
    for parent in (Path(__file__).resolve(), *Path(__file__).resolve().parents):
        if (parent / "pyproject.toml").exists():
            return parent
    raise SystemExit("could not locate the repo root (no pyproject.toml found)")


def documentation_files(root: Path) -> list[Path]:
    """README plus every Markdown file under ``docs/``."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").rglob("*.md")))
    return [f for f in files if f.exists()]


@dataclass
class Snippet:
    """One fenced Python block: source text plus its location for reporting."""

    path: Path
    line: int  # 1-based line of the opening fence
    source: str


def extract(path: Path) -> tuple[list[tuple[int, str]], list[Snippet]]:
    """Collect (line, target) link references and executable Python snippets."""
    links: list[tuple[int, str]] = []
    snippets: list[Snippet] = []
    lines = path.read_text().splitlines()
    in_fence = False
    fence_lang = ""
    fence_start = 0
    fence_body: list[str] = []
    skip_armed = False
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if stripped.startswith("```"):
            if not in_fence:
                in_fence = True
                fence_lang = stripped[3:].strip().lower()
                fence_start = number
                fence_body = []
            else:
                if fence_lang == "python" and not skip_armed:
                    snippets.append(
                        Snippet(path=path, line=fence_start, source="\n".join(fence_body))
                    )
                in_fence = False
                skip_armed = False
            continue
        if in_fence:
            fence_body.append(line)
            continue
        if stripped == SKIP_MARKER:
            skip_armed = True
        elif stripped:
            skip_armed = False
        for match in _LINK_RE.finditer(line):
            links.append((number, match.group(1)))
    return links, snippets


def check_links(root: Path, path: Path, links: list[tuple[int, str]]) -> list[str]:
    """Return one error string per relative link that does not resolve."""
    errors = []
    for number, target in links:
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(root)}:{number}: broken link -> {target}"
            )
    return errors


def run_snippet(root: Path, snippet: Snippet) -> str | None:
    """Execute one snippet from the repo root; return an error string on failure."""
    namespace: dict = {"__name__": "__docs_check__"}
    cwd = os.getcwd()
    os.chdir(root)
    try:
        code = compile(snippet.source, f"{snippet.path.name}:{snippet.line}", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own documentation
    except Exception:
        location = f"{snippet.path.relative_to(root)}:{snippet.line}"
        return f"{location}: snippet raised\n{traceback.format_exc(limit=4)}"
    finally:
        os.chdir(cwd)
    return None


def main() -> int:
    """Check every documentation file; print a summary and return an exit code."""
    root = repo_root()
    sys.path.insert(0, str(root / "src"))
    errors: list[str] = []
    for name in REQUIRED_DOCS:
        if not (root / "docs" / name).exists():
            errors.append(f"docs/{name}: required page is missing (see REQUIRED_DOCS)")
    checked_links = executed = 0
    for path in documentation_files(root):
        links, snippets = extract(path)
        checked_links += len(links)
        errors.extend(check_links(root, path, links))
        for snippet in snippets:
            executed += 1
            error = run_snippet(root, snippet)
            if error:
                errors.append(error)
    for error in errors:
        print(f"FAIL {error}")
    status = "FAILED" if errors else "ok"
    print(
        f"docs-check {status}: {checked_links} links checked, "
        f"{executed} python snippets executed, {len(errors)} problem(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Trace report CLI: summarize a JSONL trace from :mod:`repro.obs`.

Reads a trace produced by :class:`repro.obs.tracer.JsonlTracer` (for example
via ``python -m repro.analysis.perf --trace run.jsonl``) and prints three
tables:

1. **Per-phase latency breakdown** — queued / prefill / decode durations per
   request, derived with :func:`repro.obs.export.derive_request_phases`
   (count, mean, p50, p99, and how many phases were still open when the
   trace ended).
2. **Jump efficiency** — what fraction of engine iterations were fused into
   ``engine.jump`` macro-steps versus executed one at a time, split by jump
   source (``silent`` vs ``saturated``), per replica and in total.
3. **Per-tenant throttle timeline** — ``request.throttled`` events bucketed
   into fixed windows per ``user_id``, so sustained throttling is visible at
   a glance.
4. **Failure timeline** — per-replica ``replica.fail`` / ``replica.recover``
   spans (crashes are open-ended; straggler windows close on recovery) plus
   a retry histogram by attempt number, from runs with a
   :class:`repro.serving.faults.FaultPlan` attached.

``--chrome OUT.json`` additionally converts the trace to Chrome
``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``) using
:func:`repro.obs.export.export_chrome_trace`.

Run from anywhere inside the checkout::

    python tools/trace_report.py run.jsonl
    python tools/trace_report.py run.jsonl --chrome run.trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def repo_root() -> Path:
    """The checkout root (where ``pyproject.toml`` lives)."""
    for parent in (Path(__file__).resolve(), *Path(__file__).resolve().parents):
        if (parent / "pyproject.toml").exists():
            return parent
    raise SystemExit("could not locate the repo root (no pyproject.toml found)")


try:  # pragma: no cover - exercised when the package is not installed
    import repro.obs  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(repo_root() / "src"))

from repro.obs import events as obs
from repro.obs.export import REQUEST_PHASES, derive_request_phases
from repro.obs.tracer import TraceEvent, read_jsonl_trace


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sorted list."""
    index = min(len(values) - 1, max(0, round(fraction * (len(values) - 1))))
    return values[index]


def phase_table(events: list[TraceEvent]) -> list[dict]:
    """Per-phase latency rows: name, count, incomplete, mean/p50/p99 seconds."""
    by_name: dict[str, list[float]] = defaultdict(list)
    open_count: dict[str, int] = defaultdict(int)
    for phase in derive_request_phases(events):
        by_name[phase.name].append(phase.duration)
        if not phase.complete:
            open_count[phase.name] += 1
    rows = []
    for name in REQUEST_PHASES:
        durations = sorted(by_name.get(name, []))
        if not durations:
            continue
        rows.append(
            {
                "phase": name,
                "count": len(durations),
                "incomplete": open_count.get(name, 0),
                "mean_s": round(sum(durations) / len(durations), 4),
                "p50_s": round(_percentile(durations, 0.50), 4),
                "p99_s": round(_percentile(durations, 0.99), 4),
            }
        )
    return rows


def jump_table(events: list[TraceEvent]) -> list[dict]:
    """Per-replica jump-efficiency rows plus a ``total`` row.

    ``engine.step`` events are sampled (only iterations where something
    happened are emitted), so the loop-iteration count here is a lower
    bound; the fused counts are exact.  The authoritative counters live on
    ``RunResult.jump_stats`` — this table is what you can recover from the
    trace alone.
    """
    per_replica: dict[int | None, dict[str, int]] = defaultdict(
        lambda: {"loop_steps": 0, "silent_jumps": 0, "saturated_jumps": 0, "steps_fused": 0}
    )
    for event in events:
        if event.name == obs.ENGINE_STEP:
            per_replica[event.replica]["loop_steps"] += 1
        elif event.name == obs.ENGINE_JUMP:
            row = per_replica[event.replica]
            source = event.attrs.get("source", "silent")
            row[f"{source}_jumps"] = row.get(f"{source}_jumps", 0) + 1
            row["steps_fused"] += int(event.attrs.get("steps", 0))
    rows = []
    total = {"loop_steps": 0, "silent_jumps": 0, "saturated_jumps": 0, "steps_fused": 0}
    for replica in sorted(per_replica, key=lambda r: (r is None, r)):
        row = per_replica[replica]
        for key in total:
            total[key] += row.get(key, 0)
        rows.append({"replica": replica, **row, "fused_fraction": _fused_fraction(row)})
    if len(rows) > 1:
        rows.append({"replica": "total", **total, "fused_fraction": _fused_fraction(total)})
    return rows


def _fused_fraction(row: dict) -> float:
    """Fused iterations over all iterations visible in the trace."""
    iterations = row["loop_steps"] + row["steps_fused"]
    return round(row["steps_fused"] / iterations, 4) if iterations else 0.0


def throttle_timeline(events: list[TraceEvent], bucket_seconds: float) -> list[dict]:
    """``request.throttled`` counts per tenant per time bucket.

    Tenant identity rides on the ``request.submit`` event, so throttle
    events are joined back to their submission by ``request_id``.
    """
    tenants: dict[object, str] = {}
    for event in events:
        if event.name == obs.REQUEST_SUBMIT and event.request_id is not None:
            who = event.attrs.get("user_id", event.attrs.get("app_id"))
            if who is not None:
                tenants[event.request_id] = str(who)
    buckets: dict[tuple[str, int], int] = defaultdict(int)
    reasons: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for event in events:
        if event.name != obs.REQUEST_THROTTLED:
            continue
        tenant = tenants.get(event.request_id, "<anonymous>")
        buckets[(tenant, int(event.time // bucket_seconds))] += 1
        reasons[tenant][str(event.attrs.get("reason", "unknown"))] += 1
    rows = []
    for tenant in sorted(reasons):
        tenant_buckets = {
            bucket: count for (who, bucket), count in sorted(buckets.items()) if who == tenant
        }
        rows.append(
            {
                "tenant": tenant,
                "throttled": sum(tenant_buckets.values()),
                "reasons": dict(sorted(reasons[tenant].items())),
                "timeline": {
                    f"{bucket * bucket_seconds:g}s": count for bucket, count in tenant_buckets.items()
                },
            }
        )
    return rows


def failure_table(events: list[TraceEvent]) -> list[dict]:
    """Per-replica fault spans plus a fleet-wide retry histogram.

    Each ``replica.fail`` opens a span; a matching ``replica.recover`` closes
    it (straggler windows).  Crashes never recover, so their spans stay open
    (``until: None``) — the replacement shows up as a fresh ``replica.launch``
    elsewhere in the trace.  The final row histograms ``request.retry``
    events by attempt number: a healthy recovery story is front-loaded
    (most work lands on attempt 1), while a long tail means the retry
    policy is fighting dead or overloaded capacity.
    """
    spans: dict[int | None, list[dict]] = defaultdict(list)
    migrations: dict[int | None, int] = defaultdict(int)
    retries: dict[int, int] = defaultdict(int)
    for event in events:
        if event.name == obs.REPLICA_FAIL:
            spans[event.replica].append(
                {
                    "cause": str(event.attrs.get("cause", "unknown")),
                    "from": event.time,
                    "until": None,
                }
            )
        elif event.name == obs.REPLICA_RECOVER:
            open_spans = [s for s in spans[event.replica] if s["until"] is None]
            if open_spans:
                open_spans[-1]["until"] = event.time
        elif event.name == obs.REQUEST_MIGRATE:
            migrations[event.replica] += 1
        elif event.name == obs.REQUEST_RETRY:
            retries[int(event.attrs.get("attempt", 0))] += 1
    rows = []
    for replica in sorted(spans, key=lambda r: (r is None, r)):
        rows.append(
            {
                "replica": replica,
                "faults": spans[replica],
                "migrated_off": migrations.get(replica, 0),
            }
        )
    if retries:
        rows.append(
            {
                "replica": "fleet",
                "retry_histogram": {
                    f"attempt-{attempt}": count for attempt, count in sorted(retries.items())
                },
                "retries": sum(retries.values()),
            }
        )
    return rows


def build_report(events: list[TraceEvent], bucket_seconds: float = 10.0) -> dict:
    """The full report as one JSON-serializable dict."""
    names: dict[str, int] = defaultdict(int)
    for event in events:
        names[event.name] += 1
    return {
        "events": len(events),
        "event_counts": dict(sorted(names.items())),
        "phases": phase_table(events),
        "jumps": jump_table(events),
        "throttle": throttle_timeline(events, bucket_seconds),
        "failures": failure_table(events),
    }


def _print_rows(title: str, rows: list[dict]) -> None:
    """Render one section: a title line plus one aligned JSON row per entry."""
    print(f"\n== {title} ==")
    if not rows:
        print("  (no events)")
        return
    for row in rows:
        print("  " + json.dumps(row))


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, read the trace, print the report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="JSONL trace written by JsonlTracer")
    parser.add_argument(
        "--bucket",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="throttle-timeline bucket width in simulated seconds (default: 10)",
    )
    parser.add_argument(
        "--chrome",
        type=Path,
        default=None,
        metavar="OUT",
        help="also export Chrome trace_event JSON (Perfetto-loadable) to OUT",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the whole report as one JSON document instead of tables",
    )
    args = parser.parse_args(argv)

    if not args.trace.exists():
        parser.error(f"trace file not found: {args.trace}")
    events = read_jsonl_trace(args.trace)
    report = build_report(events, bucket_seconds=args.bucket)

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"{args.trace}: {report['events']} events")
        for name, count in report["event_counts"].items():
            print(f"  {name}: {count}")
        _print_rows("request phase latency (seconds)", report["phases"])
        _print_rows("jump efficiency", report["jumps"])
        _print_rows("per-tenant throttling", report["throttle"])
        _print_rows("failure timeline", report["failures"])

    if args.chrome is not None:
        from repro.obs.export import export_chrome_trace

        export_chrome_trace(events, args.chrome)
        print(f"\nChrome trace written to {args.chrome} (open in Perfetto or chrome://tracing)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
